//! Seeded generators for realistic synthetic applications.
//!
//! The paper motivates offloading with apps like face recognition,
//! games and email (§I) and distinguishes programs "with loosely
//! coupled as well as highly coupled functions" (abstract). These
//! generators produce [`Application`]s with those shapes so examples
//! and benchmarks exercise both regimes.

use crate::{Application, ApplicationBuilder, FunctionKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How tightly the generated functions communicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CouplingProfile {
    /// Mostly light data exchange — partitions cut cheaply anywhere.
    LooselyCoupled,
    /// Mostly heavy data exchange — only a few cheap cuts exist, and
    /// compression must fuse the hot pairs.
    HighlyCoupled,
    /// A bimodal mix of both (default).
    #[default]
    Mixed,
}

impl CouplingProfile {
    /// Probability that a generated call carries a *large* volume.
    fn heavy_probability(self) -> f64 {
        match self {
            CouplingProfile::LooselyCoupled => 0.05,
            CouplingProfile::HighlyCoupled => 0.70,
            CouplingProfile::Mixed => 0.30,
        }
    }
}

/// Specification of a synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticAppSpec {
    name: String,
    components: usize,
    functions_per_component: usize,
    profile: CouplingProfile,
    pinned_fraction: f64,
    extra_call_factor: f64,
    compute_weight: (f64, f64),
    small_volume: (f64, f64),
    large_volume: (f64, f64),
    seed: u64,
}

impl SyntheticAppSpec {
    /// A spec with `components` components of `functions_per_component`
    /// functions each, the [`CouplingProfile::Mixed`] profile, 10 %
    /// pinned functions, computation weights 1–50, small volumes 1–8
    /// and large volumes 40–120.
    pub fn new(name: impl Into<String>, components: usize, functions_per_component: usize) -> Self {
        SyntheticAppSpec {
            name: name.into(),
            components: components.max(1),
            functions_per_component: functions_per_component.max(1),
            profile: CouplingProfile::default(),
            pinned_fraction: 0.10,
            extra_call_factor: 1.5,
            compute_weight: (1.0, 50.0),
            small_volume: (1.0, 8.0),
            large_volume: (40.0, 120.0),
            seed: 0xAB5E,
        }
    }

    /// Preset: a camera → detection pipeline with heavy frame traffic
    /// (highly coupled; capture and preview pinned).
    pub fn face_recognition() -> Self {
        SyntheticAppSpec::new("face-recognition", 3, 18)
            .profile(CouplingProfile::HighlyCoupled)
            .pinned_fraction(0.15)
            .compute_weight_range(10.0, 120.0)
            .large_volume_range(80.0, 200.0)
    }

    /// Preset: an email client — many small handlers exchanging small
    /// payloads (loosely coupled; storage/UI pinned).
    pub fn email_client() -> Self {
        SyntheticAppSpec::new("email-client", 6, 12)
            .profile(CouplingProfile::LooselyCoupled)
            .pinned_fraction(0.20)
            .compute_weight_range(1.0, 20.0)
    }

    /// Preset: a mobile game — a hot physics/render core plus loose
    /// periphery (mixed).
    pub fn mobile_game() -> Self {
        SyntheticAppSpec::new("mobile-game", 4, 16)
            .profile(CouplingProfile::Mixed)
            .pinned_fraction(0.12)
            .compute_weight_range(5.0, 90.0)
    }

    /// Sets the coupling profile.
    pub fn profile(mut self, profile: CouplingProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the fraction (0–1) of functions pinned to the device.
    pub fn pinned_fraction(mut self, f: f64) -> Self {
        self.pinned_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets how many extra (non-tree) calls to add per function.
    pub fn extra_call_factor(mut self, f: f64) -> Self {
        self.extra_call_factor = f.max(0.0);
        self
    }

    /// Sets the computation weight range.
    pub fn compute_weight_range(mut self, lo: f64, hi: f64) -> Self {
        self.compute_weight = (lo, hi);
        self
    }

    /// Sets the small (loose) data-volume range.
    pub fn small_volume_range(mut self, lo: f64, hi: f64) -> Self {
        self.small_volume = (lo, hi);
        self
    }

    /// Sets the large (coupled) data-volume range.
    pub fn large_volume_range(mut self, lo: f64, hi: f64) -> Self {
        self.large_volume = (lo, hi);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total functions this spec will generate.
    pub fn function_count(&self) -> usize {
        self.components * self.functions_per_component
    }

    /// Generates the application (deterministic per spec + seed).
    pub fn build(&self) -> Application {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut b = ApplicationBuilder::new(self.name.clone());
        let heavy_p = self.profile.heavy_probability();
        for ci in 0..self.components {
            let comp = b.begin_component(format!("component{ci}"));
            let mut ids = Vec::with_capacity(self.functions_per_component);
            for fi in 0..self.functions_per_component {
                let kind = if rng.gen_bool(self.pinned_fraction) {
                    match rng.gen_range(0..3) {
                        0 => FunctionKind::SensorRead,
                        1 => FunctionKind::LocalIo,
                        _ => FunctionKind::UserInterface,
                    }
                } else {
                    FunctionKind::Pure
                };
                let w = sample(&mut rng, self.compute_weight);
                let id = b
                    .add_function(comp, format!("c{ci}_f{fi}"), w, kind)
                    .expect("generated weights are valid");
                ids.push(id);
            }
            // call tree keeps every component connected
            for k in 1..ids.len() {
                let parent = ids[rng.gen_range(0..k)];
                let vol = self.sample_volume(&mut rng, heavy_p);
                b.add_call(parent, ids[k], vol).expect("tree call is valid");
            }
            // extra calls thicken the topology
            let extras = (self.functions_per_component as f64 * self.extra_call_factor) as usize;
            for _ in 0..extras {
                let a = rng.gen_range(0..ids.len());
                let c = rng.gen_range(0..ids.len());
                if a == c {
                    continue;
                }
                let vol = self.sample_volume(&mut rng, heavy_p);
                b.add_call(ids[a], ids[c], vol)
                    .expect("extra call is valid");
            }
        }
        b.build()
    }

    fn sample_volume(&self, rng: &mut ChaCha8Rng, heavy_p: f64) -> f64 {
        if rng.gen_bool(heavy_p) {
            sample(rng, self.large_volume)
        } else {
            sample(rng, self.small_volume)
        }
    }
}

fn sample(rng: &mut ChaCha8Rng, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::ComponentLabeling;

    #[test]
    fn generates_requested_shape() {
        let app = SyntheticAppSpec::new("t", 3, 10).seed(1).build();
        assert_eq!(app.component_count(), 3);
        assert_eq!(app.function_count(), 30);
        assert!(app.call_count() >= 27); // at least the three call trees
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticAppSpec::new("t", 2, 8).seed(5).build();
        let b = SyntheticAppSpec::new("t", 2, 8).seed(5).build();
        let c = SyntheticAppSpec::new("t", 2, 8).seed(6).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn components_extract_as_connected_subgraphs() {
        let app = SyntheticAppSpec::new("t", 4, 12).seed(2).build();
        let ex = app.extract();
        let labeling = ComponentLabeling::compute(&ex.graph);
        // calls never cross components, so graph components == app components
        assert_eq!(labeling.count(), 4);
    }

    #[test]
    fn highly_coupled_has_heavier_edges_than_loose() {
        let heavy = SyntheticAppSpec::new("h", 2, 20)
            .profile(CouplingProfile::HighlyCoupled)
            .seed(3)
            .build()
            .extract();
        let light = SyntheticAppSpec::new("l", 2, 20)
            .profile(CouplingProfile::LooselyCoupled)
            .seed(3)
            .build()
            .extract();
        let mean = |g: &mec_graph::Graph| g.total_edge_weight() / g.edge_count() as f64;
        assert!(
            mean(&heavy.graph) > 2.0 * mean(&light.graph),
            "heavy {} vs light {}",
            mean(&heavy.graph),
            mean(&light.graph)
        );
    }

    #[test]
    fn pinned_fraction_zero_means_all_offloadable() {
        let app = SyntheticAppSpec::new("t", 2, 10)
            .pinned_fraction(0.0)
            .seed(4)
            .build();
        assert_eq!(app.pinned_functions().count(), 0);
    }

    #[test]
    fn presets_build() {
        for app in [
            SyntheticAppSpec::face_recognition().build(),
            SyntheticAppSpec::email_client().build(),
            SyntheticAppSpec::mobile_game().build(),
        ] {
            assert!(app.function_count() > 0);
            let ex = app.extract();
            assert_eq!(ex.graph.check_invariants(), Ok(()));
        }
    }
}
