//! Property tests for the application model: extraction preserves
//! totals, the spec format round-trips, generators honour their specs.

use mec_app::{Application, CouplingProfile, SyntheticAppSpec};
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = Application> {
    (
        1usize..5,
        2usize..20,
        prop_oneof![
            Just(CouplingProfile::LooselyCoupled),
            Just(CouplingProfile::HighlyCoupled),
            Just(CouplingProfile::Mixed),
        ],
        0.0f64..0.5,
        0u64..500,
    )
        .prop_map(|(comps, fns, profile, pinned, seed)| {
            SyntheticAppSpec::new("prop", comps, fns)
                .profile(profile)
                .pinned_fraction(pinned)
                .seed(seed)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extraction_preserves_compute_weight(app in arb_app()) {
        let total_app: f64 = app.functions().map(|(_, f)| f.compute_weight).sum();
        let ex = app.extract();
        prop_assert!((ex.graph.total_node_weight() - total_app).abs() < 1e-9);
        prop_assert_eq!(ex.graph.node_count(), app.function_count());
        prop_assert_eq!(ex.graph.check_invariants(), Ok(()));
    }

    #[test]
    fn extraction_preserves_communication_volume(app in arb_app()) {
        let total_calls: f64 = app.calls().map(|c| c.data_volume).sum();
        let ex = app.extract();
        // undirected folding sums parallel calls, so totals match exactly
        prop_assert!((ex.graph.total_edge_weight() - total_calls).abs() < 1e-9);
    }

    #[test]
    fn pinned_functions_extract_as_unoffloadable(app in arb_app()) {
        let ex = app.extract();
        for (id, f) in app.functions() {
            prop_assert_eq!(
                ex.graph.is_offloadable(ex.node_of(id)),
                f.kind.is_offloadable()
            );
        }
    }

    #[test]
    fn components_never_mix(app in arb_app()) {
        let ex = app.extract();
        for call in app.calls() {
            let ca = app.function(call.caller).component;
            let cb = app.function(call.callee).component;
            prop_assert_eq!(ca, cb, "synthetic calls stay within a component");
        }
        // component_of agrees with the app's records
        for (id, f) in app.functions() {
            prop_assert_eq!(ex.component_of[ex.node_of(id).index()], f.component.index());
        }
    }

    #[test]
    fn spec_format_round_trips(app in arb_app()) {
        let text = app.to_spec_string();
        let back = Application::from_spec_str(&text).unwrap();
        prop_assert_eq!(app, back);
    }

    #[test]
    fn json_round_trips(app in arb_app()) {
        let json = serde_json::to_string(&app).unwrap();
        let back: Application = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(app, back);
    }

    #[test]
    fn dot_export_mentions_every_function(app in arb_app()) {
        let dot = app.to_dot();
        for (_, f) in app.functions() {
            prop_assert!(dot.contains(&f.name), "missing {} in dot", f.name);
        }
    }
}
