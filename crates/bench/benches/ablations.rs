//! Ablation benches for the design choices DESIGN.md calls out:
//! threshold rule, traversal policy, split rule, greedy driver, and
//! eigensolver backend.

use copmecs_core::{GreedyMode, Offloader};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::workload::paper_graph;
use mec_labelprop::{CompressionConfig, Compressor, ThresholdRule, TraversalPolicy};
use mec_linalg::{smallest_eigenpairs, LanczosOptions};
use mec_model::{Scenario, SystemParams, UserWorkload};
use mec_spectral::{GraphLaplacian, SpectralBisector, SplitRule};

fn bench_threshold_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/threshold_rule");
    group.sample_size(10);
    let g = paper_graph(1000, mec_bench::DEFAULT_SEED);
    for (label, rule) in [
        ("mean1.5", ThresholdRule::MeanFactor(1.5)),
        ("absolute25", ThresholdRule::Absolute(25.0)),
        ("quantile0.7", ThresholdRule::Quantile(0.7)),
    ] {
        let compressor = Compressor::new(CompressionConfig::new().threshold(rule));
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| std::hint::black_box(compressor.compress(g).stats.compressed_nodes))
        });
    }
    group.finish();
}

fn bench_traversal_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/traversal_policy");
    group.sample_size(10);
    let g = paper_graph(1000, mec_bench::DEFAULT_SEED);
    for (label, policy) in [("bfs", TraversalPolicy::Bfs), ("dfs", TraversalPolicy::Dfs)] {
        let compressor = Compressor::new(CompressionConfig::new().policy(policy));
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| std::hint::black_box(compressor.compress(g).stats.compressed_nodes))
        });
    }
    group.finish();
}

fn bench_split_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/split_rule");
    group.sample_size(10);
    let g = mec_netgen::NetgenSpec::new(400, 1600)
        .components(1)
        .seed(mec_bench::DEFAULT_SEED)
        .generate()
        .unwrap();
    for (label, rule) in [
        ("sweep", SplitRule::Sweep),
        ("sign", SplitRule::Sign),
        ("median", SplitRule::Median),
    ] {
        let bisector = SpectralBisector::new().split_rule(rule);
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| std::hint::black_box(bisector.bisect(g).unwrap().cut_weight))
        });
    }
    group.finish();
}

fn bench_greedy_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/greedy_mode");
    group.sample_size(10);
    let pool: Vec<std::sync::Arc<mec_graph::Graph>> = (0..4)
        .map(|i| std::sync::Arc::new(paper_graph(500, mec_bench::DEFAULT_SEED + i)))
        .collect();
    let scenario = Scenario::new(SystemParams::default()).with_users(
        (0..32).map(|i| UserWorkload::new(format!("u{i}"), std::sync::Arc::clone(&pool[i % 4]))),
    );
    for (label, mode) in [
        ("lazy", GreedyMode::Lazy),
        ("exhaustive", GreedyMode::Exhaustive),
    ] {
        let offloader = Offloader::builder().greedy_mode(mode).build();
        group.bench_with_input(BenchmarkId::from_parameter(label), &scenario, |b, s| {
            b.iter(|| std::hint::black_box(offloader.solve(s).unwrap().greedy.evaluations))
        });
    }
    group.finish();
}

fn bench_eigensolver_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/eigensolver");
    group.sample_size(10);
    let g = mec_netgen::NetgenSpec::new(300, 1200)
        .components(1)
        .seed(mec_bench::DEFAULT_SEED)
        .generate()
        .unwrap();
    let lap = GraphLaplacian::new(&g);
    for (label, opts) in [
        (
            "lanczos",
            LanczosOptions {
                dense_cutoff: 0,
                ..LanczosOptions::default()
            },
        ),
        (
            "dense-jacobi",
            LanczosOptions {
                dense_cutoff: usize::MAX,
                ..LanczosOptions::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &lap, |b, lap| {
            b.iter(|| {
                let pairs = smallest_eigenpairs(lap, 2, &opts).unwrap();
                std::hint::black_box(pairs[1].value)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_threshold_rules,
    bench_traversal_policy,
    bench_split_rules,
    bench_greedy_modes,
    bench_eigensolver_backends
);
criterion_main!(benches);
