//! Criterion bench for Figs. 3–5: the single-user pipeline per cut
//! strategy, at a representative graph size.

use copmecs_core::{Offloader, StrategyKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::workload::paper_graph;
use mec_model::{Scenario, SystemParams, UserWorkload};

fn bench_single_user(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_5/single_user_pipeline");
    group.sample_size(10);
    let graph = std::sync::Arc::new(paper_graph(1000, mec_bench::DEFAULT_SEED));
    let scenario = Scenario::new(SystemParams::default())
        .with_user(UserWorkload::new("u0", std::sync::Arc::clone(&graph)));
    for (label, kind) in [
        ("spectral", StrategyKind::Spectral),
        ("max-flow", StrategyKind::MaxFlow),
        ("kernighan-lin", StrategyKind::KernighanLin),
    ] {
        let offloader = Offloader::builder().strategy(kind).build();
        group.bench_with_input(BenchmarkId::from_parameter(label), &scenario, |b, s| {
            b.iter(|| {
                let report = offloader.solve(std::hint::black_box(s)).unwrap();
                std::hint::black_box(report.evaluation.totals.energy)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_user);
criterion_main!(benches);
