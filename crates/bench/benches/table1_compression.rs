//! Criterion bench for Table I: the graph compression stage
//! (Algorithm 1) across the paper's graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::workload::paper_graph;
use mec_labelprop::{CompressionConfig, Compressor};

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/compression");
    group.sample_size(10);
    for &nodes in &[250usize, 500, 1000, 2000] {
        let g = paper_graph(nodes, mec_bench::DEFAULT_SEED);
        let compressor = Compressor::new(CompressionConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &g, |b, g| {
            b.iter(|| {
                let outcome = compressor.compress(std::hint::black_box(g));
                std::hint::black_box(outcome.stats.compressed_nodes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
