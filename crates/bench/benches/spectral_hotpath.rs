//! Criterion bench for the zero-realloc spectral hot path.
//!
//! Benches the per-user front-end (compress → recursive Fiedler cuts)
//! in three configurations so a regression in any layer of the
//! optimisation shows up as its own curve:
//!
//! - `cold`: fresh buffers per call, cold Lanczos (pre-PR shape);
//! - `scratch`: one [`CutScratch`] arena reused across calls,
//!   warm-start off — isolates the allocation savings;
//! - `scratch+warm`: arena plus warm-started Lanczos — the full hot
//!   path, as wired by `experiments --bench-out BENCH_spectral.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::runtime::runtime_graph;
use mec_graph::Graph;
use mec_labelprop::{CompressionConfig, Compressor};
use mec_linalg::LanczosOptions;
use mec_spectral::{CutScratch, RecursiveBisector};

const DEPTH: usize = 3;

fn front_end_quotients(users: usize, nodes: usize) -> Vec<Graph> {
    let compressor = Compressor::new(CompressionConfig::default());
    (0..users)
        .flat_map(|i| {
            let g = runtime_graph(nodes, mec_bench::DEFAULT_SEED + i as u64);
            compressor
                .compress(&g)
                .components
                .iter()
                .map(|c| c.quotient.graph().clone())
                .collect::<Vec<_>>()
        })
        .collect()
}

fn bench_spectral_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/front_end");
    group.sample_size(10);
    // small enough for a smoke run, large enough that every quotient
    // clears the eigensolver's dense cutoff and Lanczos actually runs
    let quotients = front_end_quotients(2, 600);

    group.bench_with_input(BenchmarkId::from_parameter("cold"), &quotients, |b, qs| {
        let bisector = RecursiveBisector::new().max_depth(DEPTH);
        b.iter(|| {
            let mut parts = 0usize;
            for q in qs {
                parts += bisector.partition(std::hint::black_box(q)).unwrap().parts;
            }
            std::hint::black_box(parts)
        })
    });

    group.bench_with_input(
        BenchmarkId::from_parameter("scratch"),
        &quotients,
        |b, qs| {
            let bisector = RecursiveBisector::new().max_depth(DEPTH);
            let mut scratch = CutScratch::new();
            b.iter(|| {
                let mut parts = 0usize;
                for q in qs {
                    parts += bisector
                        .partition_reusing(std::hint::black_box(q), &mut scratch)
                        .unwrap()
                        .parts;
                }
                std::hint::black_box(parts)
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("scratch+warm"),
        &quotients,
        |b, qs| {
            let bisector =
                RecursiveBisector::new()
                    .max_depth(DEPTH)
                    .lanczos_options(LanczosOptions {
                        warm_start: true,
                        ..LanczosOptions::default()
                    });
            let mut scratch = CutScratch::new();
            b.iter(|| {
                let mut parts = 0usize;
                for q in qs {
                    parts += bisector
                        .partition_reusing(std::hint::black_box(q), &mut scratch)
                        .unwrap()
                        .parts;
                }
                std::hint::black_box(parts)
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_spectral_hotpath);
criterion_main!(benches);
