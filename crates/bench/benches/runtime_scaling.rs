//! Criterion bench for Fig. 9: the four runtime curves at a
//! representative size (the `experiments -- fig9` binary sweeps the
//! full size axis).

use copmecs_core::{Offloader, StrategyKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::runtime::{runtime_graph, DenseSpectralStrategy, LanczosSerialStrategy};
use mec_engine::Cluster;
use mec_model::{Scenario, SystemParams, UserWorkload};
use std::sync::Arc;

fn bench_runtime_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/runtime_variants");
    group.sample_size(10);
    let graph = Arc::new(runtime_graph(1000, mec_bench::DEFAULT_SEED));
    let scenario = Scenario::new(SystemParams::default())
        .with_user(UserWorkload::new("u0", Arc::clone(&graph)));
    let cluster = Arc::new(Cluster::with_default_parallelism().unwrap());

    let variants: Vec<(&str, Offloader)> = vec![
        (
            "spectral-dense",
            Offloader::builder().build_with_strategy(Box::new(DenseSpectralStrategy::new())),
        ),
        (
            "spectral-engine",
            Offloader::builder()
                .strategy(StrategyKind::SpectralParallel {
                    cluster: Arc::clone(&cluster),
                    blocks: cluster.worker_count() * 2,
                })
                .build(),
        ),
        (
            "lanczos-serial",
            Offloader::builder().build_with_strategy(Box::new(LanczosSerialStrategy::new())),
        ),
        (
            "max-flow",
            Offloader::builder().strategy(StrategyKind::MaxFlow).build(),
        ),
        (
            "kernighan-lin",
            Offloader::builder()
                .strategy(StrategyKind::KernighanLin)
                .build(),
        ),
    ];
    for (label, offloader) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &scenario, |b, s| {
            b.iter(|| {
                let report = offloader.solve(std::hint::black_box(s)).unwrap();
                std::hint::black_box(report.evaluation.totals.energy)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_variants);
criterion_main!(benches);
