//! Criterion bench for Figs. 6–8: the multi-user pipeline as the crowd
//! grows.

use copmecs_core::Offloader;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::workload::paper_graph;
use mec_model::{Scenario, SystemParams, UserWorkload};
use std::sync::Arc;

fn bench_multi_user(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_8/multi_user_pipeline");
    group.sample_size(10);
    let pool: Vec<Arc<mec_graph::Graph>> = (0..4)
        .map(|i| Arc::new(paper_graph(500, mec_bench::DEFAULT_SEED + i)))
        .collect();
    for &users in &[8usize, 32, 128] {
        let scenario = Scenario::new(SystemParams::default()).with_users(
            (0..users).map(|i| UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % 4]))),
        );
        let offloader = Offloader::new();
        group.bench_with_input(BenchmarkId::from_parameter(users), &scenario, |b, s| {
            b.iter(|| {
                let report = offloader.solve(std::hint::black_box(s)).unwrap();
                std::hint::black_box(report.evaluation.totals.energy)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_user);
criterion_main!(benches);
