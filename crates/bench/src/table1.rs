//! Table I — graph compression results.

use crate::workload::paper_graph;
use mec_labelprop::{CompressionConfig, Compressor};
use mec_obs::TraceSink;
use serde::Serialize;

/// One row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Network label (`Network1` …) as in the paper.
    pub network: String,
    /// Function count before compression.
    pub nodes: usize,
    /// Edge count before compression.
    pub edges: usize,
    /// Function count after compression.
    pub compressed_nodes: usize,
    /// Edge count after compression.
    pub compressed_edges: usize,
    /// Fraction of offloadable nodes eliminated.
    pub node_reduction: f64,
}

/// Runs the compression experiment over the given `(nodes, edges)`
/// sizes with `seed`.
pub fn run(sizes: &[usize], seed: u64) -> Vec<Table1Row> {
    run_traced(sizes, seed, &mec_obs::NullSink)
}

/// Like [`run`] but routes compression telemetry (`labelprop.round`
/// events, `compress.stats`) through `sink`.
pub fn run_traced(sizes: &[usize], seed: u64, sink: &dyn TraceSink) -> Vec<Table1Row> {
    let compressor = Compressor::new(CompressionConfig::default());
    sizes
        .iter()
        .enumerate()
        .map(|(i, &nodes)| {
            let g = paper_graph(nodes, seed + i as u64);
            let stats = compressor.compress_traced(&g, sink).stats;
            Table1Row {
                network: format!("Network{}", i + 1),
                nodes: stats.original_nodes,
                edges: stats.original_edges,
                compressed_nodes: stats.compressed_nodes,
                compressed_edges: stats.compressed_edges,
                node_reduction: stats.node_reduction(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_shrink_and_reduction_grows_with_size() {
        let rows = run(&[250, 1000], 7);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.compressed_nodes < r.nodes);
            assert!(r.compressed_edges <= r.edges);
            assert!(r.node_reduction > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(&[250], 3);
        let b = run(&[250], 3);
        assert_eq!(a[0].compressed_nodes, b[0].compressed_nodes);
    }
}
