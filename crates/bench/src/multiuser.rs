//! Figures 6–8 — multi-user energy versus crowd size.
//!
//! The paper fixes the application at 1000 functions and grows the
//! number of users sharing the edge server (250 → 5000). Users draw
//! their workloads from a small pool of distinct graphs (shared via
//! `Arc`, so memory stays flat).

use crate::energy::paper_strategies;
use crate::workload::paper_graph;
use copmecs_core::Offloader;
use mec_graph::Graph;
use mec_model::{Scenario, SystemParams, UserWorkload};
use mec_obs::TraceSink;
use serde::Serialize;
use std::sync::Arc;

/// One measurement: a strategy at a crowd size.
#[derive(Debug, Clone, Serialize)]
pub struct MultiUserPoint {
    /// Number of users sharing the server.
    pub users: usize,
    /// Strategy label.
    pub strategy: String,
    /// `Σ e_c` (Fig. 6's metric).
    pub local_energy: f64,
    /// `Σ e_t` (Fig. 7's metric).
    pub tx_energy: f64,
    /// `E` (Fig. 8's metric).
    pub total_energy: f64,
    /// Fraction of all functions offloaded.
    pub offloaded_fraction: f64,
}

/// Parameters of the multi-user sweep.
#[derive(Debug, Clone)]
pub struct MultiUserConfig {
    /// Function count per application (paper: 1000).
    pub graph_nodes: usize,
    /// Distinct workload graphs in the pool.
    pub pool: usize,
    /// RNG seed.
    pub seed: u64,
    /// Server capacity as a multiple of `local_capacity × max_users`.
    /// `0.5` means the server matches half the crowd's combined device
    /// capacity, so contention bites gradually across the sweep
    /// instead of saturating at its start.
    pub server_scale: f64,
}

impl Default for MultiUserConfig {
    fn default() -> Self {
        MultiUserConfig {
            graph_nodes: 1000,
            pool: 8,
            seed: crate::DEFAULT_SEED,
            server_scale: 0.5,
        }
    }
}

/// Runs the multi-user sweep over `user_counts`.
pub fn run(user_counts: &[usize], config: &MultiUserConfig) -> Vec<MultiUserPoint> {
    run_traced(user_counts, config, &mec_obs::null_sink())
}

/// Like [`run`] but wires `sink` into every pipeline it builds.
pub fn run_traced(
    user_counts: &[usize],
    config: &MultiUserConfig,
    sink: &Arc<dyn TraceSink>,
) -> Vec<MultiUserPoint> {
    let pool: Vec<Arc<Graph>> = (0..config.pool)
        .map(|i| Arc::new(paper_graph(config.graph_nodes, config.seed + i as u64)))
        .collect();
    let max_users = user_counts.iter().copied().max().unwrap_or(1);
    let base = SystemParams::default();
    let params = SystemParams {
        server_capacity: base.local_capacity * max_users as f64 * config.server_scale,
        ..base
    };
    let mut out = Vec::new();
    for &users in user_counts {
        let scenario =
            Scenario::new(params)
                .with_users((0..users).map(|i| {
                    UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % pool.len()]))
                }));
        let total_functions: usize = scenario
            .users()
            .iter()
            .map(|u| u.graph().node_count())
            .sum();
        for (label, kind) in paper_strategies() {
            let report = Offloader::builder()
                .strategy(kind)
                .trace_sink(Arc::clone(sink))
                .build()
                .solve(&scenario)
                .expect("pipeline succeeds on generated workloads");
            let t = &report.evaluation.totals;
            let offloaded: usize = report
                .plan
                .iter()
                .map(|p| p.count_on(mec_graph::Side::Remote))
                .sum();
            out.push(MultiUserPoint {
                users,
                strategy: label.to_string(),
                local_energy: t.local_energy,
                tx_energy: t.tx_energy,
                total_energy: t.energy,
                offloaded_fraction: offloaded as f64 / total_functions as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MultiUserConfig {
        MultiUserConfig {
            graph_nodes: 120,
            pool: 2,
            seed: 9,
            server_scale: 0.5,
        }
    }

    #[test]
    fn energies_grow_with_user_count() {
        let pts = run(&[2, 8], &tiny());
        assert_eq!(pts.len(), 6);
        for (label, _) in paper_strategies() {
            let series: Vec<_> = pts.iter().filter(|p| p.strategy == label).collect();
            assert!(
                series[1].total_energy > series[0].total_energy,
                "{label}: {} vs {}",
                series[1].total_energy,
                series[0].total_energy
            );
        }
    }

    #[test]
    fn contention_reduces_offloaded_fraction() {
        let pts = run(&[1, 16], &tiny());
        let ours: Vec<_> = pts
            .iter()
            .filter(|p| p.strategy == "our algorithm")
            .collect();
        assert!(ours[1].offloaded_fraction <= ours[0].offloaded_fraction + 1e-9);
    }
}
