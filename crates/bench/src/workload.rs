//! Workload construction shared by all experiments.

use mec_graph::Graph;
use mec_netgen::NetgenSpec;

/// Edge count for a graph of `nodes` functions, following the density
/// of the paper's Table I rows (interpolating between them; the five
/// published sizes reproduce the published edge counts exactly).
pub fn edges_for(nodes: usize) -> usize {
    // published (nodes, edges) anchor points
    const ROWS: [(usize, usize); 5] = [
        (250, 1214),
        (500, 2643),
        (1000, 4912),
        (2000, 9578),
        (5000, 40243),
    ];
    if nodes <= ROWS[0].0 {
        return (nodes * ROWS[0].1) / ROWS[0].0;
    }
    for w in ROWS.windows(2) {
        let (n0, e0) = w[0];
        let (n1, e1) = w[1];
        if nodes == n1 {
            return e1;
        }
        if nodes < n1 {
            // linear interpolation
            let t = (nodes - n0) as f64 / (n1 - n0) as f64;
            return (e0 as f64 + t * (e1 - e0) as f64).round() as usize;
        }
    }
    // extrapolate with the top segment's density
    let (n1, e1) = ROWS[4];
    (nodes as f64 * e1 as f64 / n1 as f64).round() as usize
}

/// A paper-shaped workload graph of `nodes` functions.
///
/// # Panics
///
/// Panics only if the interpolated spec is internally inconsistent,
/// which would be a bug in [`edges_for`].
pub fn paper_graph(nodes: usize, seed: u64) -> Graph {
    NetgenSpec::paper_network(nodes, edges_for(nodes))
        .seed(seed)
        .generate()
        .expect("paper-shaped specs are generable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_rows_are_exact() {
        assert_eq!(edges_for(250), 1214);
        assert_eq!(edges_for(500), 2643);
        assert_eq!(edges_for(1000), 4912);
        assert_eq!(edges_for(2000), 9578);
        assert_eq!(edges_for(5000), 40243);
    }

    #[test]
    fn interpolation_is_monotone() {
        let mut prev = 0;
        for n in (250..=5000).step_by(250) {
            let e = edges_for(n);
            assert!(e >= prev, "edges_for({n}) = {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn graphs_have_requested_shape() {
        let g = paper_graph(300, 1);
        assert_eq!(g.node_count(), 300);
        assert_eq!(g.edge_count(), edges_for(300));
    }
}
