//! Figure 9 — running time versus graph size.
//!
//! Four curves as in the paper:
//!
//! - **our algorithm without engine** — the spectral pipeline with the
//!   *dense* eigensolver. The paper reports that its serial variant
//!   "wasted most of the running time on lots of matrix
//!   multiplications about the graph spectrum calculation"; the dense
//!   Jacobi path reproduces exactly that cost profile.
//! - **our algorithm with engine** — the sparse Lanczos eigensolver
//!   with Laplacian products sharded over the [`mec_engine`] cluster
//!   (the paper's Spark configuration).
//! - **max-flow min-cut** and **Kernighan–Lin** — the combinatorial
//!   baselines.
//!
//! Two extra series (not in the paper): `lanczos-serial` isolates how
//! much of the speed-up comes from sparsity vs parallelism, and
//! `multilevel` times the future-work coarsen–partition–refine scheme.

use crate::workload::edges_for;
use copmecs_core::{CutError, CutStrategy, Offloader, StrategyKind};
use mec_engine::Cluster;
use mec_graph::{Bipartition, Graph};
use mec_linalg::LanczosOptions;
use mec_model::{Scenario, SystemParams, UserWorkload};
use mec_netgen::NetgenSpec;
use mec_obs::{MetricsRegistry, TraceSink};
use mec_spectral::SpectralBisector;
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// One timing measurement.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimePoint {
    /// Graph size (function count).
    pub size: usize,
    /// Curve label.
    pub variant: String,
    /// End-to-end pipeline seconds (compression + cuts + greedy).
    pub seconds: f64,
}

/// Spectral strategy forced onto the dense (Jacobi) eigensolver —
/// the paper's matrix-multiplication-bound serial implementation.
#[derive(Debug, Clone)]
pub struct DenseSpectralStrategy {
    bisector: SpectralBisector,
}

impl DenseSpectralStrategy {
    /// Creates the dense-eigensolver strategy.
    pub fn new() -> Self {
        DenseSpectralStrategy {
            bisector: SpectralBisector::new().lanczos_options(LanczosOptions {
                // always densify: every eigenpair comes from Jacobi
                dense_cutoff: usize::MAX,
                ..LanczosOptions::default()
            }),
        }
    }
}

impl Default for DenseSpectralStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl CutStrategy for DenseSpectralStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "spectral-dense"
    }

    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError> {
        Ok(self.bisector.bisect(g)?.partition)
    }
}

/// Serial sparse Lanczos spectral strategy (the ablation series).
#[derive(Debug, Clone)]
pub struct LanczosSerialStrategy {
    bisector: SpectralBisector,
}

impl LanczosSerialStrategy {
    /// Creates the serial-Lanczos strategy.
    pub fn new() -> Self {
        LanczosSerialStrategy {
            bisector: SpectralBisector::new().lanczos_options(LanczosOptions {
                dense_cutoff: 0,
                ..LanczosOptions::default()
            }),
        }
    }
}

impl Default for LanczosSerialStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl CutStrategy for LanczosSerialStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "lanczos-serial"
    }

    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError> {
        Ok(self.bisector.bisect(g)?.partition)
    }
}

/// One serial-vs-cluster measurement of the multi-user pipeline
/// front-end (compression + cuts fanned out one stage task per user) —
/// the speedup rows reported alongside the Fig. 9 runtime table.
#[derive(Debug, Clone, Serialize)]
pub struct FrontendSpeedup {
    /// Users in the scenario (one graph each).
    pub users: usize,
    /// Functions per user graph.
    pub nodes: usize,
    /// Cluster worker threads used for the distributed run.
    pub workers: usize,
    /// Wall-clock seconds of the serial `Offloader::solve`.
    pub serial_seconds: f64,
    /// Wall-clock seconds of `Offloader::solve_with` under a cluster
    /// [`ExecCtx`](copmecs_core::ExecCtx) at `workers`.
    pub cluster_seconds: f64,
    /// `serial_seconds / cluster_seconds`.
    pub speedup: f64,
    /// `available_parallelism` on the measuring host. A speedup near
    /// 1.0 on a single-core host is the hardware ceiling, not a bug.
    pub host_parallelism: usize,
}

/// Times the serial solve against the cluster-backed solve on a
/// `users`-user scenario and asserts the two plans stayed
/// bit-identical while measuring.
///
/// Each user gets a distinct *single-component* graph of `nodes`
/// functions (the Fig. 9 runtime workload): with one component per
/// graph the component-parallel compressor has nothing to fan out, so
/// the measurement isolates the per-*user* stage distribution.
pub fn frontend_speedup(users: usize, nodes: usize, seed: u64, workers: usize) -> FrontendSpeedup {
    let scenario =
        Scenario::new(SystemParams::default())
            .with_users((0..users).map(|i| {
                UserWorkload::new(format!("u{i}"), runtime_graph(nodes, seed + i as u64))
            }));
    let offloader = Offloader::new();

    let start = std::time::Instant::now();
    let serial = offloader
        .solve(&scenario)
        .expect("serial pipeline succeeds");
    let serial_seconds = start.elapsed().as_secs_f64();

    let cluster = Arc::new(Cluster::new(workers).expect("cluster spawns"));
    let mut ctx = offloader.exec_ctx().into_cluster(cluster);
    let start = std::time::Instant::now();
    let clustered = offloader
        .solve_with(&mut ctx, &scenario)
        .expect("cluster pipeline succeeds");
    let cluster_seconds = start.elapsed().as_secs_f64();

    assert_eq!(
        serial.plan, clustered.plan,
        "cluster front-end must stay bit-identical to the serial path"
    );
    FrontendSpeedup {
        users,
        nodes,
        workers,
        serial_seconds,
        cluster_seconds,
        speedup: serial_seconds / cluster_seconds,
        host_parallelism: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
    }
}

/// Per-worker utilization row for the cluster leg of a
/// [`frontend_speedup_traced`] measurement, sourced from the
/// `worker`-labeled series the engine records into its
/// [`MetricsRegistry`].
#[derive(Debug, Clone, Serialize)]
pub struct WorkerUtilization {
    /// Worker index (the registry's `worker` label).
    pub worker: usize,
    /// Tasks this worker completed (`engine.task_nanos{worker}` count).
    pub tasks: u64,
    /// Seconds this worker spent inside tasks
    /// (`engine.worker_busy_nanos{worker}`).
    pub busy_seconds: f64,
    /// `busy / wall` for the cluster leg, clamped to `[0, 1]`.
    pub utilization: f64,
    /// Median task latency in nanoseconds.
    pub p50_task_nanos: u64,
    /// 99th-percentile task latency in nanoseconds.
    pub p99_task_nanos: u64,
    /// Median queue wait in nanoseconds.
    pub p50_queue_nanos: u64,
}

/// [`frontend_speedup`] with full telemetry wired through both legs:
/// the serial and cluster solves record their stage spans and
/// histograms into `sink`, and the cluster is built with
/// [`Cluster::with_telemetry`] so per-worker task-latency / queue-wait
/// distributions land in `registry` and each worker announces itself
/// to the sink ([`TraceSink::register_worker`] — a sharded recorder
/// uses this to pin worker threads to dedicated shards). Returns the
/// speedup record plus one utilization row per worker, computed from
/// the registry's `worker`-labeled series over the cluster leg's wall
/// clock.
pub fn frontend_speedup_traced(
    users: usize,
    nodes: usize,
    seed: u64,
    workers: usize,
    sink: &Arc<dyn TraceSink>,
    registry: &Arc<MetricsRegistry>,
) -> (FrontendSpeedup, Vec<WorkerUtilization>) {
    let scenario =
        Scenario::new(SystemParams::default())
            .with_users((0..users).map(|i| {
                UserWorkload::new(format!("u{i}"), runtime_graph(nodes, seed + i as u64))
            }));
    let offloader = Offloader::builder().trace_sink(Arc::clone(sink)).build();

    let start = std::time::Instant::now();
    let serial = offloader
        .solve(&scenario)
        .expect("serial pipeline succeeds");
    let serial_seconds = start.elapsed().as_secs_f64();

    // snapshot before the cluster leg so the utilization diff only
    // covers registry activity attributable to the clustered run
    let before = registry.snapshot();
    let cluster = Arc::new(
        Cluster::with_telemetry(workers, Some(Arc::clone(registry)), Some(Arc::clone(sink)))
            .expect("cluster spawns"),
    );
    let mut ctx = offloader.exec_ctx().into_cluster(cluster);
    let start = std::time::Instant::now();
    let clustered = offloader
        .solve_with(&mut ctx, &scenario)
        .expect("cluster pipeline succeeds");
    let cluster_seconds = start.elapsed().as_secs_f64();

    assert_eq!(
        serial.plan, clustered.plan,
        "cluster front-end must stay bit-identical to the serial path"
    );

    let interval = registry.snapshot().since(&before);
    let wall = Duration::from_secs_f64(cluster_seconds);
    let per_worker = (0..workers)
        .map(|w| {
            let label = w.to_string();
            let busy_nanos = interval
                .counter_labeled("engine.worker_busy_nanos", "worker", &label)
                .unwrap_or(0);
            let (tasks, p50, p99) = interval
                .histogram_labeled("engine.task_nanos", "worker", &label)
                .map(|h| {
                    (
                        h.count(),
                        h.value_at_quantile(0.50),
                        h.value_at_quantile(0.99),
                    )
                })
                .unwrap_or((0, 0, 0));
            let p50_queue = interval
                .histogram_labeled("engine.queue_wait_nanos", "worker", &label)
                .map(|h| h.value_at_quantile(0.50))
                .unwrap_or(0);
            WorkerUtilization {
                worker: w,
                tasks,
                busy_seconds: busy_nanos as f64 / 1e9,
                utilization: WorkerSnapshotProxy(busy_nanos).busy_fraction(wall),
                p50_task_nanos: p50,
                p99_task_nanos: p99,
                p50_queue_nanos: p50_queue,
            }
        })
        .collect();

    (
        FrontendSpeedup {
            users,
            nodes,
            workers,
            serial_seconds,
            cluster_seconds,
            speedup: serial_seconds / cluster_seconds,
            host_parallelism: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
        },
        per_worker,
    )
}

/// Busy-fraction arithmetic shared with
/// [`mec_engine::WorkerSnapshot::busy_fraction`], applied to a
/// registry-sourced busy counter.
struct WorkerSnapshotProxy(u64);

impl WorkerSnapshotProxy {
    fn busy_fraction(&self, wall: Duration) -> f64 {
        let wall_ns = wall.as_nanos() as f64;
        if wall_ns <= 0.0 {
            return 0.0;
        }
        (self.0 as f64 / wall_ns).clamp(0.0, 1.0)
    }
}

/// Builds the Fig. 9 workload: a *single-component* graph of `nodes`
/// functions (so the spectral stage faces one large compressed graph,
/// as in the paper's runtime experiment).
pub fn runtime_graph(nodes: usize, seed: u64) -> Graph {
    NetgenSpec::new(nodes, edges_for(nodes))
        .components(1)
        .seed(seed)
        .generate()
        .expect("runtime workloads are generable")
}

fn time_pipeline(offloader: &Offloader, scenario: &Scenario) -> f64 {
    let start = std::time::Instant::now();
    let report = offloader.solve(scenario).expect("pipeline succeeds");
    let wall = start.elapsed().as_secs_f64();
    // prefer the report's own stage accounting; fall back to wall time
    let staged = report.timings.total().as_secs_f64();
    if staged > 0.0 {
        staged
    } else {
        wall
    }
}

/// Runs the timing sweep. `include_extra` adds the `lanczos-serial`
/// ablation series.
pub fn run(sizes: &[usize], seed: u64, include_extra: bool) -> Vec<RuntimePoint> {
    run_traced(sizes, seed, include_extra, &mec_obs::null_sink())
}

/// Like [`run`] but wires `sink` into every pipeline variant and
/// re-emits the engine cluster's counters (`engine.stages`,
/// `engine.tasks`, `engine.busy_nanos`) once the sweep finishes.
pub fn run_traced(
    sizes: &[usize],
    seed: u64,
    include_extra: bool,
    sink: &Arc<dyn TraceSink>,
) -> Vec<RuntimePoint> {
    let cluster = Arc::new(Cluster::with_default_parallelism().expect("cluster spawns"));
    let mut out = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let graph = Arc::new(runtime_graph(size, seed + i as u64));
        let scenario = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("u0", Arc::clone(&graph)));

        let mut variants: Vec<(String, Offloader)> = vec![
            (
                "our algorithm without engine".into(),
                Offloader::builder()
                    .trace_sink(Arc::clone(sink))
                    .build_with_strategy(Box::new(DenseSpectralStrategy::new())),
            ),
            (
                "our algorithm with engine".into(),
                Offloader::builder()
                    .strategy(StrategyKind::SpectralParallel {
                        cluster: Arc::clone(&cluster),
                        blocks: cluster.worker_count() * 2,
                    })
                    .trace_sink(Arc::clone(sink))
                    .build(),
            ),
            (
                "max-flow min-cut".into(),
                Offloader::builder()
                    .strategy(StrategyKind::MaxFlow)
                    .trace_sink(Arc::clone(sink))
                    .build(),
            ),
            (
                "Kernighan-Lin".into(),
                Offloader::builder()
                    .strategy(StrategyKind::KernighanLin)
                    .trace_sink(Arc::clone(sink))
                    .build(),
            ),
        ];
        if include_extra {
            variants.push((
                "lanczos-serial (extra)".into(),
                Offloader::builder()
                    .trace_sink(Arc::clone(sink))
                    .build_with_strategy(Box::new(LanczosSerialStrategy::new())),
            ));
            variants.push((
                "multilevel (extra)".into(),
                Offloader::builder()
                    .strategy(StrategyKind::Multilevel)
                    .trace_sink(Arc::clone(sink))
                    .build(),
            ));
        }
        for (label, offloader) in variants {
            let seconds = time_pipeline(&offloader, &scenario);
            out.push(RuntimePoint {
                size,
                variant: label,
                seconds,
            });
        }
    }
    cluster.metrics().emit_to(sink.as_ref());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_report_positive_times() {
        let pts = run(&[150], 3, true);
        assert_eq!(pts.len(), 6);
        for p in &pts {
            assert!(p.seconds > 0.0, "{} reported zero time", p.variant);
        }
    }

    #[test]
    fn runtime_graph_is_single_component() {
        let g = runtime_graph(200, 1);
        assert!(g.is_connected());
    }

    #[test]
    fn frontend_speedup_reports_consistent_measurements() {
        // parity is asserted inside frontend_speedup; here we check the
        // record itself is sane (timings positive, ratio consistent)
        let s = frontend_speedup(4, 120, 11, 2);
        assert_eq!((s.users, s.nodes, s.workers), (4, 120, 2));
        assert!(s.serial_seconds > 0.0);
        assert!(s.cluster_seconds > 0.0);
        assert!((s.speedup - s.serial_seconds / s.cluster_seconds).abs() < 1e-12);
    }

    #[test]
    fn traced_speedup_reports_per_worker_utilization() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink: Arc<dyn TraceSink> =
            Arc::new(mec_obs::MetricsSink::with_registry(Arc::clone(&registry)));
        let (s, workers) = frontend_speedup_traced(4, 120, 11, 2, &sink, &registry);
        assert_eq!((s.users, s.nodes, s.workers), (4, 120, 2));
        assert_eq!(workers.len(), 2);
        // 4 tasks were fanned out; every one is attributed to a worker
        // (under MEC_FORCE_SERIAL the cluster leg never fans out)
        if !copmecs_core::force_serial() {
            assert_eq!(workers.iter().map(|w| w.tasks).sum::<u64>(), 4);
        }
        for w in &workers {
            assert!((0.0..=1.0).contains(&w.utilization));
            if w.tasks > 0 {
                assert!(w.p50_task_nanos > 0);
                assert!(w.p99_task_nanos >= w.p50_task_nanos);
            }
        }
        // both legs recorded their stage histograms into the registry
        let snap = registry.snapshot();
        let comp = snap
            .histogram("stage.compression_nanos")
            .expect("compression histogram");
        assert_eq!(comp.count(), 8, "4 users x 2 legs");
        assert!(snap.histogram("pipeline.solve_nanos").is_some());
    }

    #[test]
    fn custom_strategies_cut_properly() {
        let g = runtime_graph(80, 2);
        // compress first — strategies see compressed graphs in the pipeline
        let dense = DenseSpectralStrategy::new().cut(&g).unwrap();
        let serial = LanczosSerialStrategy::new().cut(&g).unwrap();
        assert!(dense.is_proper());
        assert!(serial.is_proper());
        // both spectral variants find the same cut weight
        assert!((dense.cut_weight(&g) - serial.cut_weight(&g)).abs() < 1e-6);
    }
}
