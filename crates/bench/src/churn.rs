//! The streaming-churn benchmark (`BENCH_churn.json`).
//!
//! Drives an [`OffloadService`] with a seeded arrival / departure /
//! resubmit mix at a sustained crowd of 10⁵+ users and records the
//! per-event replan latency distribution. Two measurements ride in one
//! report:
//!
//! - **delta**: the service as shipped — warm-started delta replans,
//!   every event timed, p50/p99 over the whole run;
//! - **full**: a mirror service pinned to [`ReplanMode::Full`], timed
//!   on a sampled subset of the same event stream (each sample is
//!   brought current untimed first, so the timed replan covers exactly
//!   one event's worth of churn).
//!
//! `speedup = full mean / delta mean` is the headline the perf gate
//! holds ≥ 5×.

use crate::workload::paper_graph;
use copmecs_core::{OffloadService, ReplanMode};
use mec_graph::Graph;
use mec_model::SystemParams;
use mec_obs::TraceSink;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Workload shape of the churn run. Serialized into the report so the
/// gate can re-run the exact committed spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ChurnSpec {
    /// Crowd bulk-loaded before the timed run; the event mix holds the
    /// tracked count near this level.
    pub users: usize,
    /// Session shards the service hashes users across.
    pub shards: usize,
    /// Functions per user graph.
    pub nodes: usize,
    /// Distinct graphs in the workload pool (users share `Arc`s).
    pub graph_pool: usize,
    /// Timed churn events (each followed by one service replan).
    pub events: usize,
    /// Events additionally timed under a full-mode mirror service for
    /// the speedup denominator.
    pub full_samples: usize,
    /// RNG seed for the event stream and the graph pool.
    pub seed: u64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        // 102 400 users leaves headroom so the random mix never dips
        // the tracked count below the 10⁵ sustained floor
        ChurnSpec {
            users: 102_400,
            shards: 8,
            nodes: 24,
            graph_pool: 64,
            events: 240,
            full_samples: 12,
            seed: 70,
        }
    }
}

impl ChurnSpec {
    /// A CI-sized run: same code paths, seconds not minutes.
    pub fn quick() -> Self {
        ChurnSpec {
            users: 1_500,
            shards: 4,
            nodes: 24,
            graph_pool: 16,
            events: 48,
            full_samples: 6,
            seed: 70,
        }
    }
}

/// What one churn run measured — written as `BENCH_churn.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChurnReport {
    /// The workload that produced these numbers.
    pub spec: ChurnSpec,
    /// Minimum tracked-user count observed across the timed run (the
    /// "sustained" crowd the latencies were measured at).
    pub sustained_users: usize,
    /// Maximum tracked-user count observed.
    pub peak_users: usize,
    /// Median per-event delta replan latency.
    pub replan_p50_nanos: u64,
    /// 99th-percentile per-event delta replan latency.
    pub replan_p99_nanos: u64,
    /// Mean per-event delta replan latency.
    pub replan_mean_nanos: u64,
    /// Mean sampled full-mode replan latency.
    pub full_mean_nanos: u64,
    /// Full-mode samples actually taken.
    pub full_samples: usize,
    /// `full_mean_nanos / replan_mean_nanos` — the gated headline.
    pub speedup: f64,
    /// Final objective of the delta service (sanity: finite, > 0).
    pub final_objective: f64,
}

/// splitmix64, the same generator the churn property tests use, so
/// event streams are reproducible from the spec alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One churn event, pre-drawn so both services replay the identical
/// stream.
enum Event {
    Join(String, Arc<Graph>),
    Leave(String),
    Resubmit(String, Arc<Graph>),
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn apply(service: &mut OffloadService, event: &Event) {
    match event {
        Event::Join(name, g) => service.join(name.clone(), Arc::clone(g)).unwrap(),
        Event::Leave(name) => {
            service.leave(name);
        }
        Event::Resubmit(name, g) => {
            service.resubmit(name.clone(), Arc::clone(g)).unwrap();
        }
    }
}

/// Runs the churn benchmark. When `sink` is given, both the service
/// events (`service.*`) and the shard sessions' telemetry
/// (`session.replan_nanos`, `greedy.evaluations`, …) flow through it —
/// this is what the CI smoke inspects over `/metrics`.
///
/// # Panics
///
/// Panics if the spec is degenerate (zero users/events) or a join
/// fails, which seeded generable workloads do not.
pub fn run(spec: &ChurnSpec, sink: Option<Arc<dyn TraceSink>>) -> ChurnReport {
    assert!(spec.users > 0 && spec.events > 0, "degenerate churn spec");
    let mut rng = Rng(spec.seed);
    let pool: Vec<Arc<Graph>> = (0..spec.graph_pool.max(1))
        .map(|i| Arc::new(paper_graph(spec.nodes, spec.seed + 1 + i as u64)))
        .collect();
    let pick = |rng: &mut Rng| Arc::clone(&pool[rng.below(pool.len() as u64) as usize]);

    let mut delta = OffloadService::new(SystemParams::default(), spec.shards);
    if let Some(sink) = sink {
        delta = delta.with_trace_sink(sink);
    }
    let mut full = OffloadService::new(SystemParams::default(), spec.shards)
        .with_replan_mode(ReplanMode::Full);

    // bulk load (untimed): the steady-state crowd both services track
    let mut present: Vec<String> = (0..spec.users).map(|u| format!("u{u}")).collect();
    let batch: Vec<(String, Arc<Graph>)> = present
        .iter()
        .map(|name| (name.clone(), pick(&mut rng)))
        .collect();
    delta.join_many(batch.clone()).unwrap();
    full.join_many(batch).unwrap();
    delta.replan().unwrap();
    full.replan().unwrap();

    // pre-draw the event stream so the delta and full measurements see
    // byte-identical churn
    let mut next_user = spec.users as u64;
    let events: Vec<Event> = (0..spec.events)
        .map(|_| {
            let roll = rng.below(10);
            if roll < 3 || present.is_empty() {
                let name = format!("u{next_user}");
                next_user += 1;
                present.push(name.clone());
                Event::Join(name, pick(&mut rng))
            } else if roll < 6 {
                let i = rng.below(present.len() as u64) as usize;
                Event::Leave(present.swap_remove(i))
            } else {
                let i = rng.below(present.len() as u64) as usize;
                Event::Resubmit(present[i].clone(), pick(&mut rng))
            }
        })
        .collect();

    let sample_every = (spec.events / spec.full_samples.max(1)).max(1);
    let mut delta_nanos: Vec<u64> = Vec::with_capacity(events.len());
    let mut full_nanos: Vec<u64> = Vec::new();
    let mut sustained = delta.user_count();
    let mut peak = sustained;
    let mut final_objective = 0.0;

    for (i, event) in events.iter().enumerate() {
        // the sampled full measurement brings the mirror current
        // first (untimed), so its timed replan covers exactly this
        // event's churn — the same unit of work the delta side pays
        let sampled = i % sample_every == 0 && full_nanos.len() < spec.full_samples;
        if sampled {
            full.replan().unwrap();
        }
        apply(&mut delta, event);
        let t0 = Instant::now();
        let report = delta.replan().unwrap();
        delta_nanos.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        final_objective = report.objective;
        sustained = sustained.min(report.users);
        peak = peak.max(report.users);
        if sampled {
            apply(&mut full, event);
            let t0 = Instant::now();
            full.replan().unwrap();
            full_nanos.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        } else {
            apply(&mut full, event);
        }
    }

    // teardown (untimed, after every stat is captured): drain a slice
    // of the crowd through the batched-departure path so a traced run
    // also exercises `leave_many` and its histograms
    let trim: Vec<String> = present.iter().take(16).cloned().collect();
    delta.leave_many(trim.iter());

    delta_nanos.sort_unstable();
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0
        } else {
            (v.iter().map(|&n| u128::from(n)).sum::<u128>() / v.len() as u128) as u64
        }
    };
    let replan_mean_nanos = mean(&delta_nanos);
    let full_mean_nanos = mean(&full_nanos);
    ChurnReport {
        spec: *spec,
        sustained_users: sustained,
        peak_users: peak,
        replan_p50_nanos: percentile(&delta_nanos, 0.50),
        replan_p99_nanos: percentile(&delta_nanos, 0.99),
        replan_mean_nanos,
        full_mean_nanos,
        full_samples: full_nanos.len(),
        speedup: full_mean_nanos as f64 / replan_mean_nanos.max(1) as f64,
        final_objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnSpec {
        ChurnSpec {
            users: 60,
            shards: 2,
            nodes: 16,
            graph_pool: 4,
            events: 12,
            full_samples: 3,
            seed: 5,
        }
    }

    #[test]
    fn churn_run_produces_a_consistent_report() {
        let r = run(&tiny(), None);
        assert!(r.sustained_users > 0 && r.sustained_users <= r.peak_users);
        assert!(r.replan_p50_nanos > 0);
        assert!(r.replan_p99_nanos >= r.replan_p50_nanos);
        assert!(r.full_samples > 0);
        assert!(r.speedup > 0.0);
        assert!(r.final_objective.is_finite() && r.final_objective > 0.0);
    }

    #[test]
    fn event_stream_is_deterministic() {
        let a = run(&tiny(), None);
        let b = run(&tiny(), None);
        // latencies differ run to run; the crowd trajectory must not
        assert_eq!(a.sustained_users, b.sustained_users);
        assert_eq!(a.peak_users, b.peak_users);
        assert_eq!(a.final_objective.to_bits(), b.final_objective.to_bits());
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 0.5), 60);
        assert_eq!(percentile(&v, 0.99), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
