//! Rendering helpers: normalised series, aligned text tables, JSON
//! dumps.

use serde::Serialize;
use std::path::Path;

/// Normalises values to the paper's convention: divide by the largest
/// value, so the worst (strategy, size) cell reads `1.00`.
/// A zero/empty series stays all-zero.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let max = values.iter().fold(0.0f64, |m, &v| m.max(v));
    if max <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / max).collect()
}

/// Renders an aligned text table.
///
/// # Panics
///
/// Panics if any row length differs from the header length.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Writes `data` as pretty JSON to `path`, creating parent directories.
///
/// # Panics
///
/// Panics on I/O failure — experiment output locations are always
/// writable in this repo's workflows, and silent loss of results is
/// worse than an abort.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, data: &T) {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results directory");
    }
    let json = serde_json::to_string_pretty(data).expect("results serialize");
    std::fs::write(path, json).expect("write results file");
}

/// Writes rows as CSV to `path` (header + one line per row), creating
/// parent directories. Cells containing commas or quotes are quoted.
///
/// # Panics
///
/// Panics on I/O failure or ragged rows, like [`render_table`].
pub fn write_csv(path: impl AsRef<Path>, headers: &[&str], rows: &[Vec<String>]) {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged csv row");
    }
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results directory");
    }
    std::fs::write(path, out).expect("write csv file");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_scales_to_unit_max() {
        let n = normalize(&[1.0, 2.0, 4.0]);
        assert_eq!(n, vec![0.25, 0.5, 1.0]);
        assert_eq!(normalize(&[]), Vec::<f64>::new());
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "12.50".into()],
            ],
        );
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("12.50"));
        // all rows equal width
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn write_csv_quotes_when_needed() {
        let dir = std::env::temp_dir().join("mec-bench-csv-test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["name", "value"],
            &[
                vec!["plain".into(), "1".into()],
                vec!["with,comma".into(), "say \"hi\"".into()],
            ],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_json_round_trips() {
        let dir = std::env::temp_dir().join("mec-bench-test");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]);
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
