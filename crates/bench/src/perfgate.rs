//! The performance-regression gate: compares a fresh spectral
//! hot-path bench run against the committed `BENCH_spectral.json`
//! baseline and classifies each headline metric pass / warn / fail
//! under a configurable noise tolerance.
//!
//! The gate re-runs the *same spec the baseline recorded* (users,
//! nodes, seed, depth, iters are read out of the baseline file), so a
//! `--quick` fresh run can never be compared against a full baseline
//! by accident. Timing metrics are noisy across hosts, hence the
//! tolerance band; structural metrics (`parts`, `cut_weight`) are
//! deterministic and compared exactly.

use crate::churn::{ChurnReport, ChurnSpec};
use crate::spectral_hotpath::{HotpathReport, HotpathSpec};
use serde::{find_field, Value};
use std::fmt;

/// Verdict for one gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GateStatus {
    /// Within half the tolerance band.
    Pass,
    /// Between half and the full tolerance band — noisy but suspicious.
    Warn,
    /// Beyond the tolerance band (or a deterministic metric changed).
    Fail,
}

impl fmt::Display for GateStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GateStatus::Pass => "PASS",
            GateStatus::Warn => "WARN",
            GateStatus::Fail => "FAIL",
        })
    }
}

/// One row of the gate table.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Metric name, e.g. `optimized.seconds`.
    pub metric: &'static str,
    /// Value recorded in the committed baseline.
    pub baseline: f64,
    /// Value from the fresh run.
    pub fresh: f64,
    /// `fresh / baseline` (1.0 when the baseline is zero and fresh is
    /// too).
    pub ratio: f64,
    /// The verdict.
    pub status: GateStatus,
}

/// The whole gate outcome.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-metric rows, headline first.
    pub rows: Vec<GateRow>,
    /// The tolerance the verdicts used (relative, e.g. 0.25 = 25 %).
    pub tolerance: f64,
    /// Informational messages — e.g. a kernel variant present on one
    /// side only, which is skipped rather than failed so schema
    /// upgrades and scalar-only binaries pass against any baseline.
    pub notes: Vec<String>,
}

impl GateReport {
    /// The most severe verdict across all rows.
    pub fn worst(&self) -> GateStatus {
        self.rows
            .iter()
            .map(|r| r.status)
            .max()
            .unwrap_or(GateStatus::Pass)
    }
}

/// The slice of the committed baseline JSON the gate compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The workload to re-run.
    pub spec: HotpathSpec,
    /// Kernel variant of the `optimized` entry; reports predating the
    /// kernel layer omit the field and are read as `"scalar"`.
    pub kernel: String,
    /// `optimized.seconds` from the baseline.
    pub optimized_seconds: f64,
    /// `speedup` from the baseline.
    pub speedup: f64,
    /// `optimized.allocations`, when the baseline was measured with a
    /// counting allocator.
    pub allocations: Option<u64>,
    /// `optimized.allocated_bytes`, likewise.
    pub allocated_bytes: Option<u64>,
    /// `optimized.parts` (deterministic).
    pub parts: u64,
    /// `optimized.cut_weight` (deterministic).
    pub cut_weight: f64,
    /// The `optimized_simd` variant, when the baseline recorded one.
    pub simd: Option<SimdBaseline>,
    /// `obs_overhead.sharded_overhead` from the baseline, when the
    /// baseline recorded the tracing-overhead measurement. Recorded
    /// for the report; the gate verdict compares the fresh value
    /// against the configured budget, not against this.
    pub obs_overhead: Option<f64>,
}

/// Baseline slice for the unrolled-kernel variant, gated against its
/// own fresh counterpart only.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdBaseline {
    /// `optimized_simd.seconds`.
    pub seconds: f64,
    /// `simd_speedup` (scalar seconds / simd seconds), when recorded.
    pub speedup: Option<f64>,
    /// `optimized_simd.parts` (deterministic).
    pub parts: u64,
    /// `optimized_simd.cut_weight` (deterministic).
    pub cut_weight: f64,
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(u) => Some(*u),
        Value::I64(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn field_f64(fields: &[(String, Value)], name: &str) -> Result<f64, String> {
    find_field(fields, name)
        .and_then(as_f64)
        .ok_or_else(|| format!("baseline lacks numeric field {name:?}"))
}

fn field_u64(fields: &[(String, Value)], name: &str) -> Result<u64, String> {
    find_field(fields, name)
        .and_then(as_u64)
        .ok_or_else(|| format!("baseline lacks integer field {name:?}"))
}

/// Parses the committed `BENCH_spectral.json` into the slice the gate
/// needs.
///
/// # Errors
///
/// A human-readable message when the file is not valid JSON or lacks a
/// required field.
pub fn parse_baseline(json: &str) -> Result<Baseline, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| format!("baseline JSON: {e}"))?;
    let top = value.as_object().ok_or("baseline is not a JSON object")?;
    let spec = find_field(top, "spec")
        .and_then(Value::as_object)
        .ok_or("baseline lacks a spec object")?;
    let optimized = find_field(top, "optimized")
        .and_then(Value::as_object)
        .ok_or("baseline lacks an optimized object")?;
    // `optimized_simd` is an optional object (absent or JSON null in
    // scalar-only reports); each variant is gated only against its own
    // counterpart, so an old baseline still gates a new binary.
    let simd = match find_field(top, "optimized_simd").and_then(Value::as_object) {
        Some(simd) => Some(SimdBaseline {
            seconds: field_f64(simd, "seconds")?,
            speedup: find_field(top, "simd_speedup").and_then(as_f64),
            parts: field_u64(simd, "parts")?,
            cut_weight: field_f64(simd, "cut_weight")?,
        }),
        None => None,
    };
    Ok(Baseline {
        spec: HotpathSpec {
            users: field_u64(spec, "users")? as usize,
            nodes: field_u64(spec, "nodes")? as usize,
            seed: field_u64(spec, "seed")?,
            depth: field_u64(spec, "depth")? as usize,
            iters: field_u64(spec, "iters")? as usize,
        },
        kernel: match find_field(optimized, "kernel") {
            Some(Value::Str(k)) => k.clone(),
            _ => "scalar".to_string(),
        },
        optimized_seconds: field_f64(optimized, "seconds")?,
        speedup: field_f64(top, "speedup")?,
        allocations: find_field(optimized, "allocations").and_then(as_u64),
        allocated_bytes: find_field(optimized, "allocated_bytes").and_then(as_u64),
        parts: field_u64(optimized, "parts")?,
        cut_weight: field_f64(optimized, "cut_weight")?,
        simd,
        obs_overhead: find_field(top, "obs_overhead")
            .and_then(Value::as_object)
            .and_then(|o| find_field(o, "sharded_overhead"))
            .and_then(as_f64),
    })
}

/// Classifies a "lower is better" metric: the regression is
/// `fresh / baseline - 1`, gated against the tolerance band.
fn gate_lower_is_better(
    metric: &'static str,
    baseline: f64,
    fresh: f64,
    tolerance: f64,
) -> GateRow {
    let ratio = if baseline > 0.0 {
        fresh / baseline
    } else {
        1.0
    };
    let status = if ratio > 1.0 + tolerance {
        GateStatus::Fail
    } else if ratio > 1.0 + tolerance / 2.0 {
        GateStatus::Warn
    } else {
        GateStatus::Pass
    };
    GateRow {
        metric,
        baseline,
        fresh,
        ratio,
        status,
    }
}

/// Classifies a "higher is better" metric (the speedup).
fn gate_higher_is_better(
    metric: &'static str,
    baseline: f64,
    fresh: f64,
    tolerance: f64,
) -> GateRow {
    let ratio = if baseline > 0.0 {
        fresh / baseline
    } else {
        1.0
    };
    let status = if ratio < 1.0 - tolerance {
        GateStatus::Fail
    } else if ratio < 1.0 - tolerance / 2.0 {
        GateStatus::Warn
    } else {
        GateStatus::Pass
    };
    GateRow {
        metric,
        baseline,
        fresh,
        ratio,
        status,
    }
}

/// Classifies a deterministic metric: any relative deviation beyond
/// `1e-9` fails regardless of tolerance.
fn gate_exact(metric: &'static str, baseline: f64, fresh: f64) -> GateRow {
    let scale = baseline.abs().max(fresh.abs()).max(1.0);
    let status = if (fresh - baseline).abs() <= 1e-9 * scale {
        GateStatus::Pass
    } else {
        GateStatus::Fail
    };
    GateRow {
        metric,
        baseline,
        fresh,
        ratio: if baseline != 0.0 {
            fresh / baseline
        } else {
            1.0
        },
        status,
    }
}

/// Classifies the tracing-overhead measurement against an absolute
/// budget (not the baseline): enabled sharded tracing may cost at most
/// `budget` relative front-end wall time (fail beyond it, warn beyond
/// half of it). The baseline column of the row shows the budget so the
/// printed table reads as "allowed vs measured".
fn gate_against_budget(metric: &'static str, budget: f64, fresh: f64) -> GateRow {
    let status = if fresh > budget {
        GateStatus::Fail
    } else if fresh > budget / 2.0 {
        GateStatus::Warn
    } else {
        GateStatus::Pass
    };
    GateRow {
        metric,
        baseline: budget,
        fresh,
        ratio: if budget > 0.0 { fresh / budget } else { 1.0 },
        status,
    }
}

/// Compares a fresh hot-path run against the committed baseline.
///
/// Wall-clock and allocation metrics use the tolerance band (fail
/// beyond it, warn beyond half of it); `parts` and `cut_weight` are
/// deterministic and compared exactly. Allocation rows are emitted
/// only when both sides were measured with a counting allocator. The
/// tracing-overhead row is gated against the absolute `obs_budget`
/// rather than the baseline, so the budget holds even if an inflated
/// overhead was ever committed.
pub fn evaluate(
    baseline: &Baseline,
    fresh: &HotpathReport,
    tolerance: f64,
    obs_budget: f64,
) -> GateReport {
    let mut rows = vec![
        gate_lower_is_better(
            "optimized.seconds",
            baseline.optimized_seconds,
            fresh.optimized.seconds,
            tolerance,
        ),
        gate_higher_is_better("speedup", baseline.speedup, fresh.speedup, tolerance),
    ];
    if let (Some(b), Some(f)) = (baseline.allocations, fresh.optimized.allocations) {
        rows.push(gate_lower_is_better(
            "optimized.allocations",
            b as f64,
            f as f64,
            tolerance,
        ));
    }
    if let (Some(b), Some(f)) = (baseline.allocated_bytes, fresh.optimized.allocated_bytes) {
        rows.push(gate_lower_is_better(
            "optimized.allocated_bytes",
            b as f64,
            f as f64,
            tolerance,
        ));
    }
    rows.push(gate_exact(
        "optimized.parts",
        baseline.parts as f64,
        fresh.optimized.parts as f64,
    ));
    rows.push(gate_exact(
        "optimized.cut_weight",
        baseline.cut_weight,
        fresh.optimized.cut_weight,
    ));
    // The unrolled-kernel variant gates only against its own baseline:
    // a variant present on one side alone is noted and skipped, never
    // failed, so schema upgrades and scalar-only binaries still pass.
    let mut notes = Vec::new();
    match (&baseline.simd, &fresh.optimized_simd) {
        (Some(b), Some(f)) => {
            rows.push(gate_lower_is_better(
                "optimized_simd.seconds",
                b.seconds,
                f.seconds,
                tolerance,
            ));
            if let (Some(bs), Some(fs)) = (b.speedup, fresh.simd_speedup) {
                rows.push(gate_higher_is_better("simd_speedup", bs, fs, tolerance));
            }
            rows.push(gate_exact(
                "optimized_simd.parts",
                b.parts as f64,
                f.parts as f64,
            ));
            rows.push(gate_exact(
                "optimized_simd.cut_weight",
                b.cut_weight,
                f.cut_weight,
            ));
        }
        (Some(_), None) => notes.push(
            "baseline records a simd variant but this binary is scalar-only; \
             simd rows skipped (rebuild with --features simd to gate them)"
                .to_string(),
        ),
        (None, Some(_)) => notes.push(
            "fresh run measured a simd variant the baseline predates; \
             simd rows skipped (commit a dual-variant baseline to gate them)"
                .to_string(),
        ),
        (None, None) => {}
    }
    // The tracing-overhead budget row: absolute, not baseline-relative.
    // A binary that did not measure overhead is noted and skipped so
    // pre-observability baselines and stripped builds still gate.
    match &fresh.obs_overhead {
        Some(obs) => {
            rows.push(gate_against_budget(
                "obs_overhead.sharded",
                obs_budget,
                obs.sharded_overhead,
            ));
            if baseline.obs_overhead.is_none() {
                notes.push(
                    "fresh run measured tracing overhead the baseline predates; \
                     gated against the budget alone"
                        .to_string(),
                );
            }
        }
        None => {
            if baseline.obs_overhead.is_some() {
                notes.push(
                    "baseline records a tracing-overhead measurement but this run \
                     skipped it; obs_overhead row omitted"
                        .to_string(),
                );
            }
        }
    }
    GateReport {
        rows,
        tolerance,
        notes,
    }
}

/// The slice of the committed `BENCH_churn.json` the churn gate
/// compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnBaseline {
    /// The churn workload to re-run.
    pub spec: ChurnSpec,
    /// `replan_p99_nanos` from the baseline.
    pub replan_p99_nanos: u64,
    /// `replan_p50_nanos` from the baseline.
    pub replan_p50_nanos: u64,
    /// `speedup` from the baseline (informational; the verdict uses
    /// the absolute floor).
    pub speedup: f64,
    /// `sustained_users` from the baseline (deterministic).
    pub sustained_users: u64,
}

/// The absolute delta-vs-full speedup floor the churn gate enforces,
/// independent of what the committed baseline achieved.
pub const CHURN_SPEEDUP_FLOOR: f64 = 5.0;

/// Parses the committed `BENCH_churn.json` into the slice the churn
/// gate needs.
///
/// # Errors
///
/// A human-readable message when the file is not valid JSON or lacks a
/// required field.
pub fn parse_churn_baseline(json: &str) -> Result<ChurnBaseline, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| format!("baseline JSON: {e}"))?;
    let top = value.as_object().ok_or("baseline is not a JSON object")?;
    let spec = find_field(top, "spec")
        .and_then(Value::as_object)
        .ok_or("baseline lacks a spec object")?;
    Ok(ChurnBaseline {
        spec: ChurnSpec {
            users: field_u64(spec, "users")? as usize,
            shards: field_u64(spec, "shards")? as usize,
            nodes: field_u64(spec, "nodes")? as usize,
            graph_pool: field_u64(spec, "graph_pool")? as usize,
            events: field_u64(spec, "events")? as usize,
            full_samples: field_u64(spec, "full_samples")? as usize,
            seed: field_u64(spec, "seed")?,
        },
        replan_p99_nanos: field_u64(top, "replan_p99_nanos")?,
        replan_p50_nanos: field_u64(top, "replan_p50_nanos")?,
        speedup: field_f64(top, "speedup")?,
        sustained_users: field_u64(top, "sustained_users")?,
    })
}

/// Compares a fresh churn run against the committed `BENCH_churn.json`
/// baseline.
///
/// Latency rows (p50/p99) use the tolerance band against the baseline;
/// the delta-vs-full speedup is gated against the absolute
/// [`CHURN_SPEEDUP_FLOOR`] (a warn below twice the floor) so the
/// incremental path cannot quietly decay toward the from-scratch one
/// even if a slow baseline were ever committed; the sustained crowd is
/// seeded and deterministic, so it is compared exactly.
pub fn evaluate_churn(baseline: &ChurnBaseline, fresh: &ChurnReport, tolerance: f64) -> GateReport {
    let rows = vec![
        // speedup vs the absolute floor: baseline column shows the
        // floor, so the table reads "required vs measured"
        GateRow {
            metric: "churn.speedup",
            baseline: CHURN_SPEEDUP_FLOOR,
            fresh: fresh.speedup,
            ratio: fresh.speedup / CHURN_SPEEDUP_FLOOR,
            status: if fresh.speedup < CHURN_SPEEDUP_FLOOR {
                GateStatus::Fail
            } else if fresh.speedup < 2.0 * CHURN_SPEEDUP_FLOOR {
                GateStatus::Warn
            } else {
                GateStatus::Pass
            },
        },
        gate_lower_is_better(
            "churn.replan_p99_nanos",
            baseline.replan_p99_nanos as f64,
            fresh.replan_p99_nanos as f64,
            tolerance,
        ),
        gate_lower_is_better(
            "churn.replan_p50_nanos",
            baseline.replan_p50_nanos as f64,
            fresh.replan_p50_nanos as f64,
            tolerance,
        ),
        gate_exact(
            "churn.sustained_users",
            baseline.sustained_users as f64,
            fresh.sustained_users as f64,
        ),
    ];
    GateReport {
        rows,
        tolerance,
        notes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral_hotpath::{HotpathMeasurement, ObsOverhead};

    /// The default budget used across the gate tests: 3 % of front-end
    /// wall time, matching the CLI default.
    const BUDGET: f64 = 0.03;

    fn measurement(label: &str, secs: f64, parts: usize, cut_weight: f64) -> HotpathMeasurement {
        HotpathMeasurement {
            label: label.to_string(),
            kernel: "scalar".to_string(),
            seconds: secs,
            allocations: Some(100_000),
            allocated_bytes: Some(40_000_000),
            peak_growth_bytes: Some(0),
            parts,
            cut_weight,
        }
    }

    fn fresh_report(seconds: f64, speedup: f64, parts: usize, cut_weight: f64) -> HotpathReport {
        HotpathReport {
            spec: HotpathSpec::default(),
            baseline: measurement("baseline", seconds * speedup, parts, cut_weight),
            optimized: measurement("optimized", seconds, parts, cut_weight),
            optimized_simd: None,
            speedup,
            simd_speedup: None,
            alloc_ratio: Some(1.5),
            obs_overhead: None,
        }
    }

    fn overhead(sharded: f64) -> ObsOverhead {
        ObsOverhead {
            off_seconds: 1.0,
            null_seconds: 1.0 * (1.0 + sharded / 4.0),
            sharded_seconds: 1.0 * (1.0 + sharded),
            null_overhead: sharded / 4.0,
            sharded_overhead: sharded,
            sharded_records: 10_000,
            sharded_dropped: 0,
        }
    }

    fn fresh_dual_report(scalar_secs: f64, simd_secs: f64, parts: usize) -> HotpathReport {
        let mut report = fresh_report(scalar_secs, 3.0, 64, 16576.5);
        let mut simd = measurement("optimized", simd_secs, parts, 16576.5);
        simd.kernel = "simd".to_string();
        report.simd_speedup = Some(scalar_secs / simd_secs);
        report.optimized_simd = Some(simd);
        report
    }

    fn baseline() -> Baseline {
        Baseline {
            spec: HotpathSpec::default(),
            kernel: "scalar".to_string(),
            optimized_seconds: 1.0,
            speedup: 3.0,
            allocations: Some(100_000),
            allocated_bytes: Some(40_000_000),
            parts: 64,
            cut_weight: 16576.5,
            simd: None,
            obs_overhead: None,
        }
    }

    fn dual_baseline() -> Baseline {
        Baseline {
            simd: Some(SimdBaseline {
                seconds: 0.6,
                speedup: Some(1.0 / 0.6),
                parts: 64,
                cut_weight: 16576.5,
            }),
            ..baseline()
        }
    }

    #[test]
    fn identical_run_passes_everything() {
        let report = evaluate(
            &baseline(),
            &fresh_report(1.0, 3.0, 64, 16576.5),
            0.25,
            BUDGET,
        );
        assert!(report.rows.iter().all(|r| r.status == GateStatus::Pass));
        assert_eq!(report.worst(), GateStatus::Pass);
    }

    #[test]
    fn large_slowdown_fails() {
        let report = evaluate(
            &baseline(),
            &fresh_report(1.5, 3.0, 64, 16576.5),
            0.25,
            BUDGET,
        );
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "optimized.seconds")
            .unwrap();
        assert_eq!(row.status, GateStatus::Fail);
        assert_eq!(report.worst(), GateStatus::Fail);
    }

    #[test]
    fn mild_slowdown_warns() {
        // 20 % over with a 25 % band: between tol/2 and tol
        let report = evaluate(
            &baseline(),
            &fresh_report(1.2, 3.0, 64, 16576.5),
            0.25,
            BUDGET,
        );
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "optimized.seconds")
            .unwrap();
        assert_eq!(row.status, GateStatus::Warn);
        assert_eq!(report.worst(), GateStatus::Warn);
    }

    #[test]
    fn lost_speedup_fails() {
        let report = evaluate(
            &baseline(),
            &fresh_report(1.0, 2.0, 64, 16576.5),
            0.25,
            BUDGET,
        );
        let row = report.rows.iter().find(|r| r.metric == "speedup").unwrap();
        assert_eq!(row.status, GateStatus::Fail);
    }

    #[test]
    fn structural_drift_fails_regardless_of_tolerance() {
        let report = evaluate(
            &baseline(),
            &fresh_report(1.0, 3.0, 65, 16576.5),
            10.0,
            BUDGET,
        );
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "optimized.parts")
            .unwrap();
        assert_eq!(row.status, GateStatus::Fail);
        let report = evaluate(
            &baseline(),
            &fresh_report(1.0, 3.0, 64, 16577.0),
            10.0,
            BUDGET,
        );
        assert_eq!(report.worst(), GateStatus::Fail);
    }

    #[test]
    fn faster_run_passes() {
        let report = evaluate(
            &baseline(),
            &fresh_report(0.5, 6.0, 64, 16576.5),
            0.25,
            BUDGET,
        );
        assert_eq!(report.worst(), GateStatus::Pass);
    }

    #[test]
    fn parse_baseline_reads_the_committed_schema() {
        let json = r#"{
            "spec": { "users": 8, "nodes": 2000, "seed": 20190707, "depth": 3, "iters": 3 },
            "baseline": { "label": "b", "seconds": 3.3, "allocations": 267554,
                          "allocated_bytes": 154201918, "peak_growth_bytes": 0,
                          "parts": 64, "cut_weight": 16576.90456367839 },
            "optimized": { "label": "o", "seconds": 1.07, "allocations": 172040,
                           "allocated_bytes": 41387922, "peak_growth_bytes": 9831,
                           "parts": 64, "cut_weight": 16576.90456367839 },
            "speedup": 3.118,
            "alloc_ratio": 1.555
        }"#;
        let b = parse_baseline(json).expect("parses");
        assert_eq!(b.spec.users, 8);
        assert_eq!(b.spec.nodes, 2000);
        assert_eq!(b.spec.seed, 20190707);
        assert_eq!(b.parts, 64);
        assert_eq!(b.allocations, Some(172040));
        assert!((b.optimized_seconds - 1.07).abs() < 1e-12);
        assert!((b.speedup - 3.118).abs() < 1e-12);
        // a pre-kernel-layer baseline reads as the scalar variant,
        // with no simd counterpart to gate
        assert_eq!(b.kernel, "scalar");
        assert_eq!(b.simd, None);
    }

    #[test]
    fn parse_baseline_reads_the_dual_variant_schema() {
        let json = r#"{
            "spec": { "users": 8, "nodes": 2000, "seed": 20190707, "depth": 3, "iters": 3 },
            "baseline": { "label": "b", "kernel": "scalar", "seconds": 3.3,
                          "parts": 64, "cut_weight": 16576.9 },
            "optimized": { "label": "o", "kernel": "scalar", "seconds": 1.07,
                           "parts": 64, "cut_weight": 16576.9 },
            "optimized_simd": { "label": "o", "kernel": "simd", "seconds": 0.66,
                                "parts": 64, "cut_weight": 16576.9 },
            "speedup": 3.118,
            "simd_speedup": 1.62,
            "alloc_ratio": null
        }"#;
        let b = parse_baseline(json).expect("parses");
        assert_eq!(b.kernel, "scalar");
        let simd = b.simd.expect("simd variant parsed");
        assert!((simd.seconds - 0.66).abs() < 1e-12);
        assert_eq!(simd.speedup, Some(1.62));
        assert_eq!(simd.parts, 64);
    }

    #[test]
    fn parse_baseline_rejects_garbage() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline(r#"{ "spec": {} }"#).is_err());
    }

    #[test]
    fn simd_variant_gates_against_its_own_baseline() {
        // simd regressed 2x while scalar is unchanged: only the simd
        // rows fail
        let report = evaluate(
            &dual_baseline(),
            &fresh_dual_report(1.0, 1.2, 64),
            0.25,
            BUDGET,
        );
        assert!(report.notes.is_empty());
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "optimized_simd.seconds")
            .unwrap();
        assert_eq!(row.status, GateStatus::Fail);
        let scalar = report
            .rows
            .iter()
            .find(|r| r.metric == "optimized.seconds")
            .unwrap();
        assert_eq!(scalar.status, GateStatus::Pass);
    }

    #[test]
    fn simd_structural_drift_fails_exactly() {
        let report = evaluate(
            &dual_baseline(),
            &fresh_dual_report(1.0, 0.6, 65),
            10.0,
            BUDGET,
        );
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "optimized_simd.parts")
            .unwrap();
        assert_eq!(row.status, GateStatus::Fail);
    }

    #[test]
    fn missing_variant_is_noted_not_failed() {
        // scalar-only binary against a dual-variant baseline
        let report = evaluate(
            &dual_baseline(),
            &fresh_report(1.0, 3.0, 64, 16576.5),
            0.25,
            BUDGET,
        );
        assert_eq!(report.worst(), GateStatus::Pass);
        assert_eq!(report.notes.len(), 1);
        assert!(!report.rows.iter().any(|r| r.metric.contains("simd")));
        // dual-variant binary against a pre-simd baseline
        let report = evaluate(&baseline(), &fresh_dual_report(1.0, 0.6, 64), 0.25, BUDGET);
        assert_eq!(report.worst(), GateStatus::Pass);
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn overhead_within_budget_passes() {
        let mut fresh = fresh_report(1.0, 3.0, 64, 16576.5);
        fresh.obs_overhead = Some(overhead(0.01));
        let report = evaluate(&baseline(), &fresh, 0.25, BUDGET);
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "obs_overhead.sharded")
            .unwrap();
        assert_eq!(row.status, GateStatus::Pass);
        // the baseline column of the budget row shows the budget itself
        assert!((row.baseline - BUDGET).abs() < 1e-12);
        assert_eq!(report.worst(), GateStatus::Pass);
        // measured-but-unrecorded-in-baseline is worth a note
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn overhead_above_half_budget_warns() {
        let mut fresh = fresh_report(1.0, 3.0, 64, 16576.5);
        fresh.obs_overhead = Some(overhead(0.02));
        let report = evaluate(&baseline(), &fresh, 0.25, BUDGET);
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "obs_overhead.sharded")
            .unwrap();
        assert_eq!(row.status, GateStatus::Warn);
    }

    #[test]
    fn overhead_beyond_budget_fails_even_if_baseline_was_worse() {
        // a bloated committed overhead must not grandfather a
        // regression past the absolute budget
        let b = Baseline {
            obs_overhead: Some(0.10),
            ..baseline()
        };
        let mut fresh = fresh_report(1.0, 3.0, 64, 16576.5);
        fresh.obs_overhead = Some(overhead(0.05));
        let report = evaluate(&b, &fresh, 0.25, BUDGET);
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "obs_overhead.sharded")
            .unwrap();
        assert_eq!(row.status, GateStatus::Fail);
        assert_eq!(report.worst(), GateStatus::Fail);
        assert!(report.notes.is_empty());
    }

    #[test]
    fn missing_overhead_measurement_is_noted_not_failed() {
        let b = Baseline {
            obs_overhead: Some(0.01),
            ..baseline()
        };
        let report = evaluate(&b, &fresh_report(1.0, 3.0, 64, 16576.5), 0.25, BUDGET);
        assert_eq!(report.worst(), GateStatus::Pass);
        assert_eq!(report.notes.len(), 1);
        assert!(!report.rows.iter().any(|r| r.metric.contains("obs")));
    }

    #[test]
    fn parse_baseline_reads_the_obs_overhead_schema() {
        let json = r#"{
            "spec": { "users": 8, "nodes": 2000, "seed": 20190707, "depth": 3, "iters": 3 },
            "baseline": { "label": "b", "seconds": 3.3, "parts": 64, "cut_weight": 16576.9 },
            "optimized": { "label": "o", "seconds": 1.07, "parts": 64, "cut_weight": 16576.9 },
            "speedup": 3.118,
            "alloc_ratio": null,
            "obs_overhead": { "off_seconds": 0.0021, "null_seconds": 0.00211,
                              "sharded_seconds": 0.00214, "null_overhead": 0.005,
                              "sharded_overhead": 0.019, "sharded_records": 12000,
                              "sharded_dropped": 0 }
        }"#;
        let b = parse_baseline(json).expect("parses");
        assert!((b.obs_overhead.expect("overhead parsed") - 0.019).abs() < 1e-12);
    }

    #[test]
    fn matched_healthy_dual_run_passes() {
        let report = evaluate(
            &dual_baseline(),
            &fresh_dual_report(1.0, 0.6, 64),
            0.25,
            BUDGET,
        );
        assert_eq!(report.worst(), GateStatus::Pass);
        assert!(report.notes.is_empty());
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "optimized_simd.cut_weight"));
    }

    fn churn_report(speedup: f64, p99: u64, sustained: usize) -> ChurnReport {
        ChurnReport {
            spec: ChurnSpec::quick(),
            sustained_users: sustained,
            peak_users: sustained + 10,
            replan_p50_nanos: 1_000_000,
            replan_p99_nanos: p99,
            replan_mean_nanos: 1_100_000,
            full_mean_nanos: (1_100_000.0 * speedup) as u64,
            full_samples: 6,
            speedup,
            final_objective: 1234.5,
        }
    }

    fn churn_baseline() -> ChurnBaseline {
        ChurnBaseline {
            spec: ChurnSpec::quick(),
            replan_p99_nanos: 2_000_000,
            replan_p50_nanos: 1_000_000,
            speedup: 20.0,
            sustained_users: 1_480,
        }
    }

    #[test]
    fn churn_baseline_roundtrips_through_json() {
        let json = serde_json::to_string(&churn_report(20.0, 2_000_000, 1_480)).unwrap();
        let parsed = parse_churn_baseline(&json).expect("parses");
        assert_eq!(parsed, churn_baseline());
        assert_eq!(parsed.spec, ChurnSpec::quick());
    }

    #[test]
    fn healthy_churn_run_passes() {
        let report = evaluate_churn(
            &churn_baseline(),
            &churn_report(20.0, 2_000_000, 1_480),
            0.25,
        );
        assert_eq!(report.worst(), GateStatus::Pass);
        assert_eq!(report.rows.len(), 4);
    }

    #[test]
    fn churn_speedup_below_floor_fails_regardless_of_baseline() {
        // even against a slow committed baseline the absolute 5x floor
        // holds — the incremental path must stay clearly ahead of full
        let mut slow = churn_baseline();
        slow.speedup = 4.0;
        let report = evaluate_churn(&slow, &churn_report(4.0, 2_000_000, 1_480), 0.25);
        assert_eq!(
            report
                .rows
                .iter()
                .find(|r| r.metric == "churn.speedup")
                .unwrap()
                .status,
            GateStatus::Fail
        );
        let warn = evaluate_churn(
            &churn_baseline(),
            &churn_report(6.0, 2_000_000, 1_480),
            0.25,
        );
        assert_eq!(
            warn.rows
                .iter()
                .find(|r| r.metric == "churn.speedup")
                .unwrap()
                .status,
            GateStatus::Warn
        );
    }

    #[test]
    fn churn_p99_regression_fails() {
        let report = evaluate_churn(
            &churn_baseline(),
            &churn_report(20.0, 3_000_000, 1_480),
            0.25,
        );
        assert_eq!(report.worst(), GateStatus::Fail);
    }

    #[test]
    fn churn_sustained_crowd_is_gated_exactly() {
        let report = evaluate_churn(
            &churn_baseline(),
            &churn_report(20.0, 2_000_000, 1_479),
            0.25,
        );
        assert_eq!(
            report
                .rows
                .iter()
                .find(|r| r.metric == "churn.sustained_users")
                .unwrap()
                .status,
            GateStatus::Fail
        );
    }
}
