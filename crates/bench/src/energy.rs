//! Figures 3–5 — single-user energy versus graph size, for the three
//! cut strategies.

use crate::workload::paper_graph;
use copmecs_core::{Offloader, StrategyKind};
use mec_model::{Scenario, SystemParams, UserWorkload};
use mec_obs::TraceSink;
use serde::Serialize;
use std::sync::Arc;

/// The three strategies the paper compares in Figs. 3–8.
pub fn paper_strategies() -> [(&'static str, StrategyKind); 3] {
    [
        ("our algorithm", StrategyKind::Spectral),
        ("maximum flow minimum cut", StrategyKind::MaxFlow),
        ("Kernighan-Lin", StrategyKind::KernighanLin),
    ]
}

/// One measurement: a strategy on a graph size.
#[derive(Debug, Clone, Serialize)]
pub struct EnergyPoint {
    /// Graph size (function count).
    pub size: usize,
    /// Strategy label as used in the paper's legends.
    pub strategy: String,
    /// `Σ e_c` (Fig. 3's metric).
    pub local_energy: f64,
    /// `Σ e_t` (Fig. 4's metric).
    pub tx_energy: f64,
    /// `E` (Fig. 5's metric).
    pub total_energy: f64,
    /// Functions offloaded.
    pub offloaded: usize,
}

/// Runs the single-user sweep: one user, graphs of the given sizes,
/// all three strategies.
pub fn run(sizes: &[usize], seed: u64) -> Vec<EnergyPoint> {
    run_traced(sizes, seed, &mec_obs::null_sink())
}

/// Like [`run`] but wires `sink` into every pipeline it builds, so the
/// trace covers all strategies across the sweep.
pub fn run_traced(sizes: &[usize], seed: u64, sink: &Arc<dyn TraceSink>) -> Vec<EnergyPoint> {
    let mut out = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let graph = Arc::new(paper_graph(size, seed + i as u64));
        let scenario = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("u0", Arc::clone(&graph)));
        for (label, kind) in paper_strategies() {
            let report = Offloader::builder()
                .strategy(kind)
                .trace_sink(Arc::clone(sink))
                .build()
                .solve(&scenario)
                .expect("pipeline succeeds on generated workloads");
            let t = &report.evaluation.totals;
            out.push(EnergyPoint {
                size,
                strategy: label.to_string(),
                local_energy: t.local_energy,
                tx_energy: t.tx_energy,
                total_energy: t.energy,
                offloaded: report.plan[0].count_on(mec_graph::Side::Remote),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_strategy_and_size() {
        let pts = run(&[120, 250], 5);
        assert_eq!(pts.len(), 6);
        // energies grow with size for every strategy
        for (label, _) in paper_strategies() {
            let series: Vec<_> = pts.iter().filter(|p| p.strategy == label).collect();
            assert!(series[1].total_energy >= series[0].total_energy);
        }
    }

    #[test]
    fn spectral_total_energy_is_never_worst() {
        let pts = run(&[250], 11);
        let ours = pts.iter().find(|p| p.strategy == "our algorithm").unwrap();
        let worst = pts
            .iter()
            .map(|p| p.total_energy)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(ours.total_energy <= worst + 1e-9);
    }
}
