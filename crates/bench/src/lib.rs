//! Experiment harness reproducing the paper's evaluation (§IV).
//!
//! One module per published artefact:
//!
//! | Paper artefact | Module | Regenerate with |
//! |---|---|---|
//! | Table I (compression) | [`table1`] | `experiments table1` |
//! | Fig. 3 local energy, 1 user | [`energy`] | `experiments fig3` |
//! | Fig. 4 transmission energy, 1 user | [`energy`] | `experiments fig4` |
//! | Fig. 5 total energy, 1 user | [`energy`] | `experiments fig5` |
//! | Fig. 6 local energy, multi-user | [`multiuser`] | `experiments fig6` |
//! | Fig. 7 transmission energy, multi-user | [`multiuser`] | `experiments fig7` |
//! | Fig. 8 total energy, multi-user | [`multiuser`] | `experiments fig8` |
//! | Fig. 9 running time | [`runtime`] | `experiments fig9` |
//!
//! The `experiments` binary prints the same rows/series the paper
//! reports (normalised the same way) and dumps machine-readable JSON
//! next to the text output. Criterion benches in `benches/` time the
//! same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod churn;
pub mod energy;
pub mod multiuser;
pub mod perfgate;
pub mod report;
pub mod runtime;
pub mod spectral_hotpath;
pub mod table1;
pub mod workload;

/// The graph sizes the paper sweeps in its single-user experiments and
/// Table I.
pub const PAPER_SIZES: [usize; 5] = [250, 500, 1000, 2000, 5000];

/// The user counts the paper sweeps in its multi-user experiments.
pub const PAPER_USER_SIZES: [usize; 5] = [250, 500, 1000, 2000, 5000];

/// Seed used throughout so every table is regenerable bit-for-bit.
pub const DEFAULT_SEED: u64 = 20190707;
