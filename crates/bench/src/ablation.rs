//! Quality ablations for the design choices DESIGN.md calls out:
//! what each knob does to the *objective*, not just to wall-clock.

use crate::workload::paper_graph;
use copmecs_core::{CutError, CutStrategy, GreedyMode, Offloader, StrategyKind};
use mec_graph::{Bipartition, Graph};
use mec_labelprop::{CompressionConfig, ThresholdRule, TraversalPolicy};
use mec_model::{AllocationPolicy, Scenario, SystemParams, UserWorkload};
use mec_obs::TraceSink;
use mec_spectral::{SpectralBisector, SplitRule};
use serde::Serialize;
use std::sync::Arc;

/// One ablation measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AblationPoint {
    /// Knob family (e.g. `threshold`).
    pub knob: String,
    /// Setting within the family (e.g. `mean x1.5`).
    pub setting: String,
    /// Final objective `E + T` on the reference workload.
    pub objective: f64,
    /// Super-nodes after compression (where compression applies).
    pub compressed_nodes: usize,
    /// Functions offloaded.
    pub offloaded: usize,
}

fn reference_scenario(seed: u64) -> Scenario {
    let pool: Vec<Arc<Graph>> = (0..3)
        .map(|i| Arc::new(paper_graph(500, seed + i)))
        .collect();
    Scenario::new(SystemParams::default())
        .with_users((0..6).map(|i| UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % 3]))))
}

fn measure(knob: &str, setting: &str, offloader: &Offloader, scenario: &Scenario) -> AblationPoint {
    let report = offloader
        .solve(scenario)
        .expect("reference workload solves");
    AblationPoint {
        knob: knob.to_string(),
        setting: setting.to_string(),
        objective: report.evaluation.totals.objective(),
        compressed_nodes: report.compression.iter().map(|c| c.compressed_nodes).sum(),
        offloaded: report
            .plan
            .iter()
            .map(|p| p.count_on(mec_graph::Side::Remote))
            .sum(),
    }
}

/// A spectral strategy with a chosen split rule (ablation helper).
#[derive(Debug, Clone)]
struct SplitRuleStrategy {
    bisector: SpectralBisector,
}

impl CutStrategy for SplitRuleStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "spectral-ablation"
    }
    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError> {
        Ok(self.bisector.bisect(g)?.partition)
    }
}

/// Runs every quality ablation and returns the points grouped by knob.
pub fn run(seed: u64) -> Vec<AblationPoint> {
    run_traced(seed, &mec_obs::null_sink())
}

/// Like [`run`] but wires `sink` into every pipeline it builds.
pub fn run_traced(seed: u64, sink: &Arc<dyn TraceSink>) -> Vec<AblationPoint> {
    let scenario = reference_scenario(seed);
    let builder = || Offloader::builder().trace_sink(Arc::clone(sink));
    let mut out = Vec::new();

    // 1. compression threshold rule
    for (label, rule) in [
        ("no compression (∞)", ThresholdRule::Absolute(f64::INFINITY)),
        ("mean x1.0", ThresholdRule::MeanFactor(1.0)),
        ("mean x1.5 (default)", ThresholdRule::MeanFactor(1.5)),
        ("mean x3.0", ThresholdRule::MeanFactor(3.0)),
        ("quantile 0.5", ThresholdRule::Quantile(0.5)),
        ("quantile 0.9", ThresholdRule::Quantile(0.9)),
    ] {
        let o = builder()
            .compression(CompressionConfig::new().threshold(rule))
            .build();
        out.push(measure("threshold", label, &o, &scenario));
    }

    // 2. propagation traversal policy
    for (label, policy) in [
        ("bfs (default)", TraversalPolicy::Bfs),
        ("dfs", TraversalPolicy::Dfs),
    ] {
        let o = builder()
            .compression(CompressionConfig::new().policy(policy))
            .build();
        out.push(measure("traversal", label, &o, &scenario));
    }

    // 3. Fiedler split rule
    for (label, rule) in [
        ("sign (default)", SplitRule::Sign),
        ("min-weight sweep", SplitRule::Sweep),
        ("ratio sweep", SplitRule::RatioSweep),
        ("median", SplitRule::Median),
    ] {
        let o = builder().build_with_strategy(Box::new(SplitRuleStrategy {
            bisector: SpectralBisector::new().split_rule(rule),
        }));
        out.push(measure("split-rule", label, &o, &scenario));
    }

    // 4. greedy driver
    for (label, mode) in [
        ("lazy heap (default)", GreedyMode::Lazy),
        ("exhaustive rescan", GreedyMode::Exhaustive),
    ] {
        let o = builder().greedy_mode(mode).build();
        out.push(measure("greedy", label, &o, &scenario));
    }

    // 5. cut strategy (including the future-work multilevel scheme)
    for (label, kind) in [
        ("spectral (default)", StrategyKind::Spectral),
        ("max-flow", StrategyKind::MaxFlow),
        ("kernighan-lin", StrategyKind::KernighanLin),
        ("multilevel", StrategyKind::Multilevel),
    ] {
        let o = builder().strategy(kind).build();
        out.push(measure("strategy", label, &o, &scenario));
    }

    // 6. server allocation policy (re-priced scenario per policy)
    for (label, policy) in [
        ("equal share (default)", AllocationPolicy::EqualShare),
        ("proportional", AllocationPolicy::ProportionalToLoad),
        ("fifo", AllocationPolicy::Fifo),
    ] {
        let params = SystemParams {
            allocation: policy,
            ..SystemParams::default()
        };
        let pool: Vec<Arc<Graph>> = (0..3)
            .map(|i| Arc::new(paper_graph(500, seed + i)))
            .collect();
        let s = Scenario::new(params).with_users(
            (0..6).map(|i| UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % 3]))),
        );
        let o = builder().strategy(StrategyKind::Spectral).build();
        out.push(measure("allocation", label, &o, &s));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_knobs() {
        let pts = run(3);
        let knobs: std::collections::HashSet<_> = pts.iter().map(|p| p.knob.as_str()).collect();
        for k in [
            "threshold",
            "traversal",
            "split-rule",
            "greedy",
            "strategy",
            "allocation",
        ] {
            assert!(knobs.contains(k), "missing knob {k}");
        }
        for p in &pts {
            assert!(p.objective.is_finite() && p.objective > 0.0);
        }
    }

    #[test]
    fn no_compression_keeps_all_nodes() {
        let pts = run(5);
        let no_comp = pts
            .iter()
            .find(|p| p.setting.starts_with("no compression"))
            .unwrap();
        let default = pts
            .iter()
            .find(|p| p.setting == "mean x1.5 (default)")
            .unwrap();
        assert!(no_comp.compressed_nodes > default.compressed_nodes);
    }
}
