//! Regenerates the paper's evaluation artefacts (Table I, Figs. 3–9).
//!
//! ```text
//! cargo run --release -p mec-bench --bin experiments -- all
//! cargo run --release -p mec-bench --bin experiments -- fig5 --quick
//! cargo run --release -p mec-bench --bin experiments -- table1 --seed 7 --out results/
//! ```
//!
//! Each command prints the same normalised rows/series the paper
//! reports and writes raw JSON next to them.
//!
//! `--trace-out <path>` additionally records pipeline telemetry
//! (stage spans, label-propagation rounds, Lanczos iterations, greedy
//! counters) through [`mec_obs::ShardedRecorder`] and writes it as
//! JSON; `--chrome-trace-out <path>` exports the same run in Chrome
//! trace-event format, and `--serve ADDR` exposes `/metrics`,
//! `/trace`, `/healthz`, and `/stacks` live over HTTP while the
//! commands run (`--serve-for SECS` keeps the endpoint up afterwards).

use mec_bench::ablation;
use mec_bench::churn::{self, ChurnSpec};
use mec_bench::energy::{self, EnergyPoint};
use mec_bench::multiuser::{self, MultiUserConfig, MultiUserPoint};
use mec_bench::perfgate::{self, GateStatus};
use mec_bench::report::{normalize, render_table, write_json};
use mec_bench::runtime::{self, FrontendSpeedup, RuntimePoint, WorkerUtilization};
use mec_bench::spectral_hotpath::{self, AllocSnapshot, HotpathSpec};
use mec_bench::{table1, DEFAULT_SEED, PAPER_SIZES, PAPER_USER_SIZES};
use mec_obs::{MetricsRegistry, MetricsSink, ShardedRecorder, TraceSink};
use std::sync::Arc;

/// Counting allocator so the hot-path benchmark can report allocation
/// and peak-heap deltas alongside wall time. Only this binary installs
/// it; the library crates stay `forbid(unsafe_code)`.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    pub static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
    static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
    pub static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
                let live = LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed)
                    + layout.size() as u64;
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
    }
}

#[global_allocator]
static GLOBAL: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

struct Options {
    command: String,
    quick: bool,
    seed: u64,
    out: String,
    extra: bool,
    trace_out: Option<String>,
    workers: usize,
    bench_out: Option<String>,
    metrics_out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    serve: Option<String>,
    serve_for: Option<u64>,
    chrome_trace_out: Option<String>,
    obs_budget: f64,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        command: String::new(),
        quick: false,
        seed: DEFAULT_SEED,
        out: "results".to_string(),
        extra: false,
        trace_out: None,
        workers: 4,
        bench_out: None,
        metrics_out: None,
        baseline: None,
        tolerance: 0.25,
        serve: None,
        serve_for: None,
        chrome_trace_out: None,
        obs_budget: 0.03,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--extra" => opts.extra = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--trace-out" => {
                opts.trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                );
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--bench-out" => {
                opts.bench_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--bench-out needs a path")),
                );
            }
            "--metrics-out" => {
                opts.metrics_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-out needs a path")),
                );
            }
            "--baseline" => {
                opts.baseline = Some(
                    args.next()
                        .unwrap_or_else(|| die("--baseline needs a path")),
                );
            }
            "--tolerance" => {
                opts.tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| die("--tolerance needs a non-negative number"));
            }
            "--serve" => {
                opts.serve = Some(
                    args.next()
                        .unwrap_or_else(|| die("--serve needs an ADDR:PORT (port 0 = ephemeral)")),
                );
            }
            "--serve-for" => {
                opts.serve_for = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--serve-for needs a number of seconds")),
                );
            }
            "--chrome-trace-out" => {
                opts.chrome_trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--chrome-trace-out needs a path")),
                );
            }
            "--obs-budget" => {
                opts.obs_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&b: &f64| b >= 0.0)
                    .unwrap_or_else(|| die("--obs-budget needs a non-negative fraction"));
            }
            cmd if opts.command.is_empty() && !cmd.starts_with('-') => {
                opts.command = cmd.to_string();
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    if opts.command.is_empty() {
        // `--bench-out FILE` alone means "just run the hot-path bench"
        opts.command = if opts.bench_out.is_some() {
            "bench".to_string()
        } else {
            "all".to_string()
        };
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments [table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablate|bench|churn|perf-gate|churn-gate|check|all] \
         [--quick] [--extra] [--seed N] [--out DIR] [--trace-out FILE] [--workers N] \
         [--bench-out FILE] [--metrics-out FILE] [--baseline FILE] [--tolerance FRAC] \
         [--serve ADDR] [--serve-for SECS] [--chrome-trace-out FILE] [--obs-budget FRAC]"
    );
    std::process::exit(2);
}

fn sizes(opts: &Options) -> Vec<usize> {
    if opts.quick {
        vec![100, 250, 500]
    } else {
        PAPER_SIZES.to_vec()
    }
}

fn user_sizes(opts: &Options) -> Vec<usize> {
    if opts.quick {
        vec![10, 25, 50]
    } else {
        PAPER_USER_SIZES.to_vec()
    }
}

fn run_table1(opts: &Options, sink: &Arc<dyn TraceSink>) {
    println!("== Table I: graph compression results ==\n");
    let rows = table1::run_traced(&sizes(opts), opts.seed, sink.as_ref());
    let table = render_table(
        &[
            "Network",
            "function number",
            "edge number",
            "functions after compression",
            "edges after compression",
            "reduction",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.nodes.to_string(),
                    r.edges.to_string(),
                    r.compressed_nodes.to_string(),
                    r.compressed_edges.to_string(),
                    format!("{:.1}%", 100.0 * r.node_reduction),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    write_json(format!("{}/table1.json", opts.out), &rows);
}

fn energy_metric(points: &[EnergyPoint], metric: &str) -> Vec<f64> {
    points
        .iter()
        .map(|p| match metric {
            "local" => p.local_energy,
            "tx" => p.tx_energy,
            _ => p.total_energy,
        })
        .collect()
}

fn render_energy_figure(points: &[EnergyPoint], metric: &str, title: &str) {
    println!("== {title} (normalised, lower is better) ==\n");
    let values = normalize(&energy_metric(points, metric));
    let sizes: Vec<usize> = {
        let mut s: Vec<_> = points.iter().map(|p| p.size).collect();
        s.dedup();
        s
    };
    let strategies: Vec<String> = {
        let mut seen = Vec::new();
        for p in points {
            if !seen.contains(&p.strategy) {
                seen.push(p.strategy.clone());
            }
        }
        seen
    };
    let mut headers = vec!["original graph size"];
    let strategy_headers: Vec<&str> = strategies.iter().map(String::as_str).collect();
    headers.extend(strategy_headers);
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&sz| {
            let mut row = vec![sz.to_string()];
            for st in &strategies {
                let idx = points
                    .iter()
                    .position(|p| p.size == sz && &p.strategy == st)
                    .expect("dense sweep");
                row.push(format!("{:.2}", values[idx]));
            }
            row
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
}

fn run_energy(
    opts: &Options,
    figs: &[(&str, &str, &str)],
    sink: &Arc<dyn TraceSink>,
) -> Vec<EnergyPoint> {
    let points = energy::run_traced(&sizes(opts), opts.seed, sink);
    for (fig, metric, title) in figs {
        render_energy_figure(&points, metric, title);
        write_json(format!("{}/{fig}.json", opts.out), &points);
    }
    points
}

fn multi_metric(points: &[MultiUserPoint], metric: &str) -> Vec<f64> {
    points
        .iter()
        .map(|p| match metric {
            "local" => p.local_energy,
            "tx" => p.tx_energy,
            _ => p.total_energy,
        })
        .collect()
}

fn render_multi_figure(points: &[MultiUserPoint], metric: &str, title: &str) {
    println!("== {title} (normalised, lower is better) ==\n");
    let values = normalize(&multi_metric(points, metric));
    let users: Vec<usize> = {
        let mut s: Vec<_> = points.iter().map(|p| p.users).collect();
        s.dedup();
        s
    };
    let strategies: Vec<String> = {
        let mut seen = Vec::new();
        for p in points {
            if !seen.contains(&p.strategy) {
                seen.push(p.strategy.clone());
            }
        }
        seen
    };
    let mut headers = vec!["user size"];
    headers.extend(strategies.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = users
        .iter()
        .map(|&u| {
            let mut row = vec![u.to_string()];
            for st in &strategies {
                let idx = points
                    .iter()
                    .position(|p| p.users == u && &p.strategy == st)
                    .expect("dense sweep");
                row.push(format!("{:.2}", values[idx]));
            }
            row
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
}

fn run_multiuser(
    opts: &Options,
    figs: &[(&str, &str, &str)],
    sink: &Arc<dyn TraceSink>,
) -> Vec<MultiUserPoint> {
    let config = MultiUserConfig {
        graph_nodes: if opts.quick { 200 } else { 1000 },
        pool: if opts.quick { 4 } else { 8 },
        seed: opts.seed,
        ..MultiUserConfig::default()
    };
    let points = multiuser::run_traced(&user_sizes(opts), &config, sink);
    for (fig, metric, title) in figs {
        render_multi_figure(&points, metric, title);
        write_json(format!("{}/{fig}.json", opts.out), &points);
    }
    points
}

/// Quick self-check: asserts the headline *shapes* of the paper hold
/// on a reduced sweep, printing PASS/FAIL per claim. Exits non-zero on
/// any failure, so CI can gate on reproduction health.
fn run_check(opts: &Options) {
    println!("== reproduction self-check (reduced sweep) ==\n");
    let mut failures = 0usize;
    let mut claim = |name: &str, ok: bool| {
        println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // Table I shape: compression removes most nodes, more at scale
    let rows = table1::run(&[250, 1000], opts.seed);
    claim(
        "compression removes over half the nodes",
        rows.iter().all(|r| r.node_reduction > 0.5),
    );
    claim(
        "compressed graphs keep fewer edges than originals",
        rows.iter().all(|r| r.compressed_edges < r.edges),
    );

    // Figs 3/5 shape: ours best-or-tied on total energy, energies grow
    let pts = energy::run(&[250, 500], opts.seed);
    let total_of = |size: usize, strat: &str| {
        pts.iter()
            .find(|p| p.size == size && p.strategy == strat)
            .map(|p| p.total_energy)
            .expect("dense sweep")
    };
    claim(
        "single-user total energy grows with graph size (all strategies)",
        ["our algorithm", "maximum flow minimum cut", "Kernighan-Lin"]
            .iter()
            .all(|s| total_of(500, s) > total_of(250, s)),
    );
    claim(
        "our algorithm's total energy is best or tied at every size",
        [250usize, 500].iter().all(|&sz| {
            let ours = total_of(sz, "our algorithm");
            ours <= 1.02 * total_of(sz, "maximum flow minimum cut")
                && ours <= 1.02 * total_of(sz, "Kernighan-Lin")
        }),
    );

    // Fig 6/8 shape: contention raises local energy; ours best
    let mu = multiuser::run(
        &[20, 60],
        &MultiUserConfig {
            graph_nodes: 200,
            pool: 4,
            seed: opts.seed,
            ..MultiUserConfig::default()
        },
    );
    let mu_of = |users: usize, strat: &str| {
        mu.iter()
            .find(|p| p.users == users && p.strategy == strat)
            .expect("dense sweep")
    };
    claim(
        "multi-user local energy grows with crowd size",
        mu_of(60, "our algorithm").local_energy > mu_of(20, "our algorithm").local_energy,
    );
    claim(
        "our algorithm's multi-user total energy is best or tied",
        [20usize, 60].iter().all(|&u| {
            let ours = mu_of(u, "our algorithm").total_energy;
            ours <= 1.02 * mu_of(u, "maximum flow minimum cut").total_energy
                && ours <= 1.02 * mu_of(u, "Kernighan-Lin").total_energy
        }),
    );
    claim(
        "contention reduces the offloaded fraction",
        mu_of(60, "our algorithm").offloaded_fraction
            <= mu_of(20, "our algorithm").offloaded_fraction + 1e-9,
    );

    // Fig 9 shape: dense-serial spectral slowest, engine cuts it back
    // (the dense-eigensolver cost only dominates at scale, so this
    // check uses a mid-size single-component graph)
    let rt = runtime::run(&[1200], opts.seed, false);
    let secs = |variant: &str| {
        rt.iter()
            .find(|p| p.variant == variant)
            .map(|p| p.seconds)
            .expect("dense sweep")
    };
    claim(
        "dense serial spectral is the slowest variant",
        secs("our algorithm without engine") >= secs("max-flow min-cut")
            && secs("our algorithm without engine") >= secs("Kernighan-Lin"),
    );
    claim(
        "the engine accelerates the spectral pipeline",
        secs("our algorithm with engine") <= secs("our algorithm without engine"),
    );

    println!();
    if failures == 0 {
        println!("all claims hold");
    } else {
        println!("{failures} claim(s) FAILED");
        std::process::exit(1);
    }
}

fn run_bench(opts: &Options) {
    println!("== spectral hot path: pre-PR baseline vs zero-realloc ==\n");
    let spec = HotpathSpec {
        seed: opts.seed,
        ..if opts.quick {
            HotpathSpec {
                users: 3,
                nodes: 1000,
                iters: 2,
                ..HotpathSpec::default()
            }
        } else {
            HotpathSpec::default()
        }
    };
    let probe = alloc_probe;
    let report = spectral_hotpath::run(&spec, Some(&probe)).expect("hot path is benchable");
    let fmt_opt = |v: Option<u64>| v.map_or_else(|| "n/a".to_string(), |v| v.to_string());
    let mut variants = vec![&report.baseline, &report.optimized];
    if let Some(simd) = &report.optimized_simd {
        variants.push(simd);
    }
    let rows: Vec<Vec<String>> = variants
        .iter()
        .map(|m| {
            vec![
                m.label.clone(),
                m.kernel.clone(),
                format!("{:.4}s", m.seconds),
                fmt_opt(m.allocations),
                fmt_opt(m.allocated_bytes),
                fmt_opt(m.peak_growth_bytes),
                m.parts.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "kernel",
                "mean wall",
                "allocs/run",
                "bytes/run",
                "peak growth",
                "parts",
            ],
            &rows,
        )
    );
    println!(
        "speedup: {:.2}x   alloc ratio: {}",
        report.speedup,
        report
            .alloc_ratio
            .map_or_else(|| "n/a".to_string(), |r| format!("{r:.1}x")),
    );
    match report.simd_speedup {
        Some(s) => println!("simd kernels: {s:.2}x over scalar optimized"),
        None => println!("simd kernels: not compiled in (build with --features simd to measure)"),
    }
    let path = opts
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_spectral.json".to_string());
    write_json(path, &report);
}

fn run_ablation(opts: &Options, sink: &Arc<dyn TraceSink>) {
    println!("== Ablations: objective E+T per design knob ==\n");
    let points = ablation::run_traced(opts.seed, sink);
    let mut current_knob = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let flush = |knob: &str, rows: &mut Vec<Vec<String>>| {
        if rows.is_empty() {
            return;
        }
        println!("-- {knob} --");
        println!(
            "{}",
            render_table(&["setting", "objective", "super-nodes", "offloaded"], rows)
        );
        rows.clear();
    };
    for p in &points {
        if p.knob != current_knob {
            flush(&current_knob, &mut rows);
            current_knob = p.knob.clone();
        }
        rows.push(vec![
            p.setting.clone(),
            format!("{:.2}", p.objective),
            p.compressed_nodes.to_string(),
            p.offloaded.to_string(),
        ]);
    }
    flush(&current_knob, &mut rows);
    write_json(format!("{}/ablations.json", opts.out), &points);
}

/// The shared allocator probe for bench-style commands.
fn alloc_probe() -> AllocSnapshot {
    AllocSnapshot {
        allocations: counting_alloc::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed),
        allocated_bytes: counting_alloc::ALLOCATED_BYTES.load(std::sync::atomic::Ordering::Relaxed),
        peak_bytes: counting_alloc::PEAK_BYTES.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// Formats one histogram sample: `*_nanos` series render as
/// milliseconds, dimensionless series (Lanczos iterations, checkpoint
/// counts, stage width) as plain integers.
fn fmt_sample(name: &str, v: u64) -> String {
    if name.ends_with("_nanos") {
        format!("{:.3}ms", v as f64 / 1e6)
    } else {
        v.to_string()
    }
}

/// Prints the per-stage latency percentile table from the live
/// registry: one row per recorded histogram of interest.
fn render_stage_percentiles(registry: &MetricsRegistry) {
    const STAGES: [&str; 13] = [
        "stage.compression_nanos",
        "stage.cutting_nanos",
        "stage.greedy_nanos",
        "pipeline.solve_nanos",
        "session.join_nanos",
        "session.join_many_nanos",
        "session.replan_nanos",
        "session.leave_many_nanos",
        "service.replan_nanos",
        "greedy.evaluations",
        "greedy.moves",
        "lanczos.iterations",
        "lanczos.checkpoints",
    ];
    let snap = registry.snapshot();
    let rows: Vec<Vec<String>> = STAGES
        .iter()
        .filter_map(|&name| {
            snap.histogram(name).map(|h| {
                vec![
                    name.to_string(),
                    h.count().to_string(),
                    fmt_sample(name, h.value_at_quantile(0.50)),
                    fmt_sample(name, h.value_at_quantile(0.90)),
                    fmt_sample(name, h.value_at_quantile(0.99)),
                    fmt_sample(name, h.max()),
                ]
            })
        })
        .collect();
    if rows.is_empty() {
        println!("(no stage histograms recorded)");
        return;
    }
    println!(
        "{}",
        render_table(&["stage", "count", "p50", "p90", "p99", "max"], &rows)
    );
}

fn run_fig9(opts: &Options, sink: &Arc<dyn TraceSink>, registry: &Arc<MetricsRegistry>) {
    println!("== Fig. 9: execution time vs graph size ==\n");
    let points: Vec<RuntimePoint> = runtime::run_traced(&sizes(opts), opts.seed, opts.extra, sink);
    let sizes: Vec<usize> = {
        let mut s: Vec<_> = points.iter().map(|p| p.size).collect();
        s.dedup();
        s
    };
    let variants: Vec<String> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.variant) {
                seen.push(p.variant.clone());
            }
        }
        seen
    };
    let mut headers = vec!["original graph size"];
    headers.extend(variants.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&sz| {
            let mut row = vec![sz.to_string()];
            for v in &variants {
                let p = points
                    .iter()
                    .find(|p| p.size == sz && &p.variant == v)
                    .expect("dense sweep");
                row.push(format!("{:.3}s", p.seconds));
            }
            row
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    write_json(format!("{}/fig9.json", opts.out), &points);

    println!("== multi-user front-end speedup (cluster vs serial) ==\n");
    let (users, nodes) = if opts.quick { (8, 300) } else { (16, 800) };
    let mut speedups: Vec<FrontendSpeedup> = Vec::new();
    let mut per_worker: Vec<WorkerUtilization> = Vec::new();
    for workers in [1, opts.workers] {
        if speedups.iter().any(|s| s.workers == workers) {
            continue;
        }
        if workers == opts.workers {
            // the headline run records per-worker distributions into
            // the registry; utilization rows come out of that interval
            let (s, w) =
                runtime::frontend_speedup_traced(users, nodes, opts.seed, workers, sink, registry);
            speedups.push(s);
            per_worker = w;
        } else {
            speedups.push(runtime::frontend_speedup(users, nodes, opts.seed, workers));
        }
    }
    let speedup_rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|s| {
            vec![
                s.users.to_string(),
                s.nodes.to_string(),
                s.workers.to_string(),
                format!("{:.3}s", s.serial_seconds),
                format!("{:.3}s", s.cluster_seconds),
                format!("{:.2}x", s.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["users", "nodes", "workers", "serial", "cluster", "speedup"],
            &speedup_rows,
        )
    );
    if let Some(s) = speedups.first() {
        if s.host_parallelism < 2 {
            println!(
                "note: this host reports {} available core(s); wall-clock speedup \
                 is capped by hardware, not by the stage distribution",
                s.host_parallelism
            );
        }
    }
    write_json(format!("{}/fig9_speedup.json", opts.out), &speedups);

    if !per_worker.is_empty() {
        println!(
            "\n== per-worker utilization (cluster leg, {} workers) ==\n",
            per_worker.len()
        );
        let rows: Vec<Vec<String>> = per_worker
            .iter()
            .map(|w| {
                vec![
                    w.worker.to_string(),
                    w.tasks.to_string(),
                    format!("{:.3}s", w.busy_seconds),
                    format!("{:.1}%", 100.0 * w.utilization),
                    fmt_sample("task_nanos", w.p50_task_nanos),
                    fmt_sample("task_nanos", w.p99_task_nanos),
                    fmt_sample("queue_nanos", w.p50_queue_nanos),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "worker",
                    "tasks",
                    "busy",
                    "utilization",
                    "task p50",
                    "task p99",
                    "queue p50",
                ],
                &rows,
            )
        );
        write_json(format!("{}/fig9_workers.json", opts.out), &per_worker);
    }

    println!("\n== pipeline stage latency distributions ==\n");
    render_stage_percentiles(registry);
}

/// Re-runs the committed baseline's hot-path spec and gates the fresh
/// numbers against it. Exits non-zero when any metric fails, so CI can
/// consume the verdict directly.
fn run_churn(opts: &Options, sink: &Arc<dyn TraceSink>) {
    println!("== streaming churn: delta replans over sharded sessions ==\n");
    let spec = ChurnSpec {
        seed: opts.seed,
        ..if opts.quick {
            ChurnSpec::quick()
        } else {
            ChurnSpec::default()
        }
    };
    println!(
        "crowd {} across {} shards, {} events ({} full-mode samples), seed {}\n",
        spec.users, spec.shards, spec.events, spec.full_samples, spec.seed
    );
    let report = churn::run(&spec, Some(Arc::clone(sink)));
    println!(
        "{}",
        render_table(
            &["metric", "value"],
            &[
                vec![
                    "sustained users".to_string(),
                    report.sustained_users.to_string()
                ],
                vec!["peak users".to_string(), report.peak_users.to_string()],
                vec![
                    "delta replan p50".to_string(),
                    fmt_sample("replan_nanos", report.replan_p50_nanos),
                ],
                vec![
                    "delta replan p99".to_string(),
                    fmt_sample("replan_nanos", report.replan_p99_nanos),
                ],
                vec![
                    "delta replan mean".to_string(),
                    fmt_sample("replan_nanos", report.replan_mean_nanos),
                ],
                vec![
                    "full replan mean".to_string(),
                    fmt_sample("replan_nanos", report.full_mean_nanos),
                ],
                vec![
                    "delta-vs-full speedup".to_string(),
                    format!("{:.2}x", report.speedup),
                ],
            ],
        )
    );
    let path = opts
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_churn.json".to_string());
    write_json(path, &report);
}

fn run_churn_gate(opts: &Options) {
    let path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| "BENCH_churn.json".to_string());
    println!("== churn gate: fresh churn run vs {path} ==\n");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(&format!("cannot read baseline {path}: {e}")));
    let baseline = perfgate::parse_churn_baseline(&json).unwrap_or_else(|e| die(&e));
    println!(
        "re-running the baseline's spec (users {}, shards {}, events {}, seed {}) \
         at {:.0}% tolerance, speedup floor {:.0}x\n",
        baseline.spec.users,
        baseline.spec.shards,
        baseline.spec.events,
        baseline.spec.seed,
        100.0 * opts.tolerance,
        perfgate::CHURN_SPEEDUP_FLOOR,
    );
    let fresh = churn::run(&baseline.spec, None);
    let report = perfgate::evaluate_churn(&baseline, &fresh, opts.tolerance);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.metric.to_string(),
                format!("{:.2}", r.baseline),
                format!("{:.2}", r.fresh),
                format!("{:.3}x", r.ratio),
                r.status.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["metric", "baseline", "fresh", "ratio", "verdict"], &rows)
    );
    println!(
        "fresh: speedup {:.2}x, p50 {}, p99 {}",
        fresh.speedup,
        fmt_sample("replan_nanos", fresh.replan_p50_nanos),
        fmt_sample("replan_nanos", fresh.replan_p99_nanos),
    );
    match report.worst() {
        GateStatus::Pass => println!("\nchurn gate: PASS"),
        GateStatus::Warn => println!(
            "\nchurn gate: WARN — within tolerance but drifting; re-run on a quiet host \
             or refresh the baseline if the regression is intended"
        ),
        GateStatus::Fail => {
            println!("\nchurn gate: FAIL — at least one metric regressed beyond tolerance");
            std::process::exit(1);
        }
    }
}

fn run_perf_gate(opts: &Options) {
    let path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| "BENCH_spectral.json".to_string());
    println!("== perf gate: fresh hot-path run vs {path} ==\n");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(&format!("cannot read baseline {path}: {e}")));
    let baseline = perfgate::parse_baseline(&json).unwrap_or_else(|e| die(&e));
    println!(
        "re-running the baseline's spec (users {}, nodes {}, seed {}, depth {}, iters {}) \
         at {:.0}% tolerance, tracing-overhead budget {:.1}%\n",
        baseline.spec.users,
        baseline.spec.nodes,
        baseline.spec.seed,
        baseline.spec.depth,
        baseline.spec.iters,
        100.0 * opts.tolerance,
        100.0 * opts.obs_budget,
    );
    let probe = alloc_probe;
    let fresh = spectral_hotpath::run(&baseline.spec, Some(&probe)).expect("hot path is benchable");
    let report = perfgate::evaluate(&baseline, &fresh, opts.tolerance, opts.obs_budget);
    let fmt_value = |v: f64| {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.4}")
        }
    };
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.metric.to_string(),
                fmt_value(r.baseline),
                fmt_value(r.fresh),
                format!("{:.3}x", r.ratio),
                r.status.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["metric", "baseline", "fresh", "ratio", "verdict"], &rows)
    );
    for note in &report.notes {
        println!("note: {note}");
    }
    match report.worst() {
        GateStatus::Pass => println!("\nperf gate: PASS"),
        GateStatus::Warn => println!(
            "\nperf gate: WARN — within tolerance but drifting; re-run on a quiet host \
             or refresh the baseline if the regression is intended"
        ),
        GateStatus::Fail => {
            println!("\nperf gate: FAIL — at least one metric regressed beyond tolerance");
            std::process::exit(1);
        }
    }
}

fn main() {
    let opts = parse_args();
    // One recorder for the whole invocation: spans and counters from
    // every pipeline the selected command builds land in one trace.
    // Any of `--trace-out`, `--serve`, `--chrome-trace-out` turns on
    // the sharded recorder (per-thread SPSC rings drained by a
    // background aggregator, so worker hot paths never contend on a
    // lock); otherwise a metrics-only sink still collects histograms
    // for the percentile tables and `--metrics-out` without buffering
    // any events.
    let wants_recorder =
        opts.trace_out.is_some() || opts.serve.is_some() || opts.chrome_trace_out.is_some();
    let recorder = wants_recorder.then(|| Arc::new(ShardedRecorder::new()));
    let (sink, registry): (Arc<dyn TraceSink>, Arc<MetricsRegistry>) = match &recorder {
        Some(r) => (Arc::clone(r) as Arc<dyn TraceSink>, r.metrics()),
        None => {
            let metrics_sink = Arc::new(MetricsSink::new());
            let registry = metrics_sink.registry();
            (metrics_sink as Arc<dyn TraceSink>, registry)
        }
    };
    // Bind the exposition endpoint before the command runs so the
    // whole run is observable live. The printed line is parsed by the
    // CI smoke job (port 0 binds an ephemeral port, reported here).
    let server = opts.serve.as_ref().map(|addr| {
        let recorder = recorder.as_ref().expect("--serve implies the recorder");
        let server = mec_obs::serve(Arc::clone(recorder), addr.as_str())
            .unwrap_or_else(|e| die(&format!("cannot bind --serve {addr}: {e}")));
        println!("serving telemetry on http://{}", server.local_addr());
        server
    });
    let single_user_figs: Vec<(&str, &str, &str)> = vec![
        ("fig3", "local", "Fig. 3: local energy consumption"),
        ("fig4", "tx", "Fig. 4: transmission energy consumption"),
        ("fig5", "total", "Fig. 5: total energy consumption"),
    ];
    let multi_user_figs: Vec<(&str, &str, &str)> = vec![
        ("fig6", "local", "Fig. 6: local energy, multi-user"),
        ("fig7", "tx", "Fig. 7: transmission energy, multi-user"),
        ("fig8", "total", "Fig. 8: total energy, multi-user"),
    ];
    match opts.command.as_str() {
        "table1" => run_table1(&opts, &sink),
        "fig3" => {
            run_energy(&opts, &single_user_figs[0..1], &sink);
        }
        "fig4" => {
            run_energy(&opts, &single_user_figs[1..2], &sink);
        }
        "fig5" => {
            run_energy(&opts, &single_user_figs[2..3], &sink);
        }
        "fig6" => {
            run_multiuser(&opts, &multi_user_figs[0..1], &sink);
        }
        "fig7" => {
            run_multiuser(&opts, &multi_user_figs[1..2], &sink);
        }
        "fig8" => {
            run_multiuser(&opts, &multi_user_figs[2..3], &sink);
        }
        "fig9" => run_fig9(&opts, &sink, &registry),
        "ablate" => run_ablation(&opts, &sink),
        "bench" => run_bench(&opts),
        "churn" => run_churn(&opts, &sink),
        "perf-gate" => run_perf_gate(&opts),
        "churn-gate" => run_churn_gate(&opts),
        "check" => run_check(&opts),
        "all" => {
            run_table1(&opts, &sink);
            run_energy(&opts, &single_user_figs, &sink);
            run_multiuser(&opts, &multi_user_figs, &sink);
            run_fig9(&opts, &sink, &registry);
            run_ablation(&opts, &sink);
        }
        other => die(&format!("unknown command: {other}")),
    }
    if let (Some(path), Some(recorder)) = (&opts.trace_out, &recorder) {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("trace directory is creatable");
            }
        }
        std::fs::write(path, recorder.to_json_string()).expect("trace file is writable");
        println!("trace written to {path}");
    }
    if let (Some(path), Some(recorder)) = (&opts.chrome_trace_out, &recorder) {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("trace directory is creatable");
            }
        }
        std::fs::write(path, recorder.to_chrome_trace_string()).expect("trace file is writable");
        println!("chrome trace written to {path} (load via chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = &opts.metrics_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("metrics directory is creatable");
            }
        }
        let snap = registry.snapshot();
        let body = if path.ends_with(".prom") || path.ends_with(".txt") {
            snap.to_prometheus_string()
        } else {
            snap.to_json_string()
        };
        std::fs::write(path, body).expect("metrics file is writable");
        println!("metrics written to {path}");
    }
    // Keep the exposition endpoint alive after the command finishes so
    // the final snapshot stays scrapeable: for `--serve-for SECS`, or
    // until killed when serving without a deadline.
    if let Some(mut server) = server {
        match opts.serve_for {
            Some(secs) => {
                println!("holding telemetry endpoint open for {secs}s");
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
            None => {
                println!("holding telemetry endpoint open until killed (Ctrl-C to exit)");
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
        }
        server.shutdown();
    }
}
