//! Inspects generated workloads: does the synthetic graph actually
//! look like a modular mobile application?
//!
//! ```text
//! cargo run --release -p mec-bench --bin workload_inspect
//! cargo run --release -p mec-bench --bin workload_inspect -- 800 3200 --seed 9
//! ```
//!
//! Prints structural metrics (density, clustering, modularity of the
//! intended modules, pinned coupling) plus the compression outcome for
//! either the Table I presets or one custom `(nodes, edges)` pair.

use mec_bench::report::render_table;
use mec_graph::{Graph, NodeGrouping};
use mec_labelprop::{CompressionConfig, Compressor};
use mec_netgen::NetgenSpec;

fn intended_modules(g: &Graph, clusters_per_component: usize) -> NodeGrouping {
    // reconstruct the generator's intended structure: components from
    // connectivity, clusters from contiguous id blocks
    let labeling = mec_graph::ComponentLabeling::compute(g);
    let members = labeling.members();
    let mut raw = vec![0usize; g.node_count()];
    let mut next = 0usize;
    for comp in members {
        let size = comp.len();
        let k = clusters_per_component.min(size.max(1));
        let base = size / k;
        let extra = size % k;
        let mut idx = 0usize;
        for c in 0..k {
            let len = base + usize::from(c < extra);
            for _ in 0..len {
                raw[comp[idx].index()] = next;
                idx += 1;
            }
            next += 1;
        }
    }
    NodeGrouping::from_raw(&raw)
}

fn inspect(nodes: usize, edges: usize, seed: u64) -> Vec<String> {
    let g = NetgenSpec::paper_network(nodes, edges)
        .seed(seed)
        .generate()
        .expect("spec is feasible");
    let modules = intended_modules(&g, 4);
    let stats = Compressor::new(CompressionConfig::default())
        .compress(&g)
        .stats;
    let deg = g.degree_summary();
    vec![
        format!("{nodes}"),
        format!("{edges}"),
        format!("{:.4}", g.density()),
        format!("{:.1}±{:.1}", deg.mean, deg.std_dev),
        format!("{:.3}", g.clustering_coefficient()),
        format!("{:.3}", g.modularity(&modules)),
        format!("{:.0}%", 100.0 * g.pinned_coupling_fraction()),
        format!("{}", stats.compressed_nodes),
        format!("{:.0}%", 100.0 * stats.node_reduction()),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20190707u64;
    let mut custom: Vec<usize> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            v => custom.push(v.parse().expect("arguments are node/edge counts")),
        }
    }
    let cases: Vec<(usize, usize)> = if custom.len() >= 2 {
        vec![(custom[0], custom[1])]
    } else {
        NetgenSpec::table1_rows().to_vec()
    };
    let rows: Vec<Vec<String>> = cases.iter().map(|&(n, e)| inspect(n, e, seed)).collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "edges",
                "density",
                "degree",
                "clustering",
                "module Q",
                "pin coupling",
                "super-nodes",
                "reduction",
            ],
            &rows
        )
    );
    println!("module Q = weighted modularity of the generator's intended clusters");
}
