//! The spectral hot-path benchmark (perf PR artefact).
//!
//! Measures the Fig. 9 multi-user front-end — recursive Fiedler cuts
//! of every compressed component. Scenario generation and compression
//! run once, untimed; the timed region is the partitioning of the
//! pre-compressed quotient graphs, measured two ways:
//!
//! - **baseline**: the pre-scratch-arena shape of the code. Every
//!   recursion level materialises an owned sub-graph
//!   ([`Subgraph::induced`]), every cut builds a fresh CSR snapshot and
//!   lets Lanczos allocate a new Krylov basis, and every solve starts
//!   cold.
//! - **optimized**: the current hot path. One [`CutScratch`] arena for
//!   the whole run, index-space [`mec_graph::CsrView`] restriction
//!   instead of owned sub-graphs, and warm-started Lanczos
//!   ([`mec_linalg::LanczosOptions::warm_start`]) seeding each child cut
//!   with the restriction of its parent's Fiedler vector.
//!
//! Both sides are recorded in the same [`HotpathReport`] (written as
//! `BENCH_spectral.json` by `experiments --bench-out`), so every PR
//! carries its own before/after evidence.

use crate::runtime::runtime_graph;
use copmecs_core::{CutStrategy, PipelineError, StrategyKind};
use mec_graph::{Graph, NodeId, Side, Subgraph};
use mec_labelprop::{CompressionConfig, Compressor};
use mec_linalg::LanczosOptions;
use mec_obs::{span, NullSink, ShardedRecorder, TraceSink};
use mec_spectral::{CutScratch, RecursiveBisector, RecursivePartition, SpectralBisector};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Cumulative allocator counters, supplied by the measuring *binary*
/// (only a binary can install the counting `#[global_allocator]`; this
/// library just diffs snapshots). All counters are monotone.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct AllocSnapshot {
    /// Heap allocations since process start.
    pub allocations: u64,
    /// Bytes requested since process start.
    pub allocated_bytes: u64,
    /// High-water mark of live heap bytes since process start.
    pub peak_bytes: u64,
}

/// Reads the current allocator counters; `None` when the binary has no
/// counting allocator (the alloc fields are then omitted as `null`).
pub type AllocProbe<'a> = Option<&'a dyn Fn() -> AllocSnapshot>;

/// Workload shape: the Fig. 9 multi-user front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HotpathSpec {
    /// Users in the scenario (one single-component graph each).
    pub users: usize,
    /// Functions per user graph.
    pub nodes: usize,
    /// Base RNG seed (user `i` uses `seed + i`).
    pub seed: u64,
    /// Recursive-bisection depth (up to `2^depth` parts per component).
    pub depth: usize,
    /// Timed repetitions; the mean is reported.
    pub iters: usize,
}

impl Default for HotpathSpec {
    fn default() -> Self {
        // nodes is chosen so compressed components stay well above the
        // eigensolver's dense cutoff: the hot path under test is the
        // sparse Lanczos recursion, as in the paper's larger Fig. 9
        // sizes, not the dense small-graph fallback
        HotpathSpec {
            users: 8,
            nodes: 2000,
            seed: 9,
            depth: 3,
            iters: 3,
        }
    }
}

/// One measured side (baseline or optimized).
#[derive(Debug, Clone, Serialize)]
pub struct HotpathMeasurement {
    /// Which implementation this row measured.
    pub label: String,
    /// Numeric-kernel variant active during the measurement
    /// (`"scalar"` or `"simd"`); reports predating the kernel layer
    /// omit the field and are read as `"scalar"`.
    pub kernel: String,
    /// Mean wall-clock seconds per front-end run.
    pub seconds: f64,
    /// Heap allocations per run (`None` without a counting allocator).
    pub allocations: Option<u64>,
    /// Bytes requested per run.
    pub allocated_bytes: Option<u64>,
    /// Growth of the live-bytes high-water mark across the run.
    pub peak_growth_bytes: Option<u64>,
    /// Total parts produced across all users/components (sanity).
    pub parts: usize,
    /// Total cut weight across all users/components (sanity).
    pub cut_weight: f64,
}

/// Tracing overhead on the Fig. 9 front-end, the quantity the
/// perf-gate's observability budget is enforced against.
///
/// Three variants of the *same* instrumented front-end loop
/// (compression + per-component cuts, the shape of
/// `copmecs_core`'s `prepare_user_reusing`) are timed min-of-iters:
///
/// - **off** — no instrumentation calls at all (no spans, no
///   histogram samples, untraced compression): the true floor;
/// - **null** — every call site active but wired to [`NullSink`]:
///   what the default pipeline pays for carrying the seams;
/// - **sharded** — a live [`ShardedRecorder`] with its background
///   aggregator running: what always-on tracing costs.
#[derive(Debug, Clone, Serialize)]
pub struct ObsOverhead {
    /// Min wall-clock seconds per front-end run, uninstrumented.
    pub off_seconds: f64,
    /// Min seconds with call sites wired to the `NullSink`.
    pub null_seconds: f64,
    /// Min seconds with a live sharded recorder (aggregator on).
    pub sharded_seconds: f64,
    /// `null_seconds / off_seconds - 1` (call-site cost).
    pub null_overhead: f64,
    /// `sharded_seconds / off_seconds - 1` (enabled-tracing cost —
    /// the gated quantity).
    pub sharded_overhead: f64,
    /// Spans + events + histogram samples the sharded leg recorded
    /// (evidence the instrumentation was actually live).
    pub sharded_records: u64,
    /// Records the sharded leg dropped (should be 0 at default
    /// capacities).
    pub sharded_dropped: u64,
}

/// The before/after record written to `BENCH_spectral.json`.
#[derive(Debug, Clone, Serialize)]
pub struct HotpathReport {
    /// The workload both sides ran.
    pub spec: HotpathSpec,
    /// Pre-PR shape: owned sub-graphs, cold Lanczos, fresh buffers.
    pub baseline: HotpathMeasurement,
    /// Current shape: CsrView + CutScratch + warm-started Lanczos,
    /// scalar kernels.
    pub optimized: HotpathMeasurement,
    /// The optimized shape under the unrolled 4-lane kernels; `None`
    /// when the binary was built without the `simd` cargo feature.
    pub optimized_simd: Option<HotpathMeasurement>,
    /// `baseline.seconds / optimized.seconds`.
    pub speedup: f64,
    /// `optimized.seconds / optimized_simd.seconds`, when measured.
    pub simd_speedup: Option<f64>,
    /// `baseline.allocations / optimized.allocations`, when measured.
    pub alloc_ratio: Option<f64>,
    /// Tracing overhead (off / NullSink / sharded-on); `None` only in
    /// reports predating the observability pipeline.
    pub obs_overhead: Option<ObsOverhead>,
}

/// Pre-PR-style recursive bisection: owned [`Subgraph::induced`] per
/// level, a cold [`SpectralBisector::bisect`] per cut (fresh CSR
/// snapshot, fresh Krylov basis). Faithful to the code shape before the
/// scratch arena landed — this is the measured baseline, not a straw
/// man: the split rule, depth, and leaf policy match the optimized
/// side exactly.
fn baseline_partition(
    g: &Graph,
    depth: usize,
    min_nodes: usize,
) -> Result<RecursivePartition, PipelineError> {
    let bisector = SpectralBisector::new();
    let mut part_of = vec![0u32; g.node_count()];
    let mut parts = 0u32;
    // (owned sub-graph, root ids, remaining depth)
    let ids: Vec<NodeId> = (0..g.node_count()).map(NodeId::new).collect();
    let mut stack: Vec<(Graph, Vec<NodeId>, usize)> = vec![(g.clone(), ids, depth)];
    while let Some((sub, to_root, left_depth)) = stack.pop() {
        let n = sub.node_count();
        if left_depth == 0 || n < min_nodes.max(2) {
            for id in &to_root {
                part_of[id.index()] = parts;
            }
            parts += 1;
            continue;
        }
        let cut = bisector
            .bisect(&sub)
            .map_err(|e| PipelineError::Cut(e.into()))?;
        if !cut.partition.is_proper() {
            for id in &to_root {
                part_of[id.index()] = parts;
            }
            parts += 1;
            continue;
        }
        let mut sides = [Vec::new(), Vec::new()];
        for i in 0..n {
            let side = usize::from(cut.partition.side(NodeId::new(i)) != Side::Local);
            sides[side].push(NodeId::new(i));
        }
        // right pushed first so the left child is processed first, like
        // the optimized partitioner — part numbering stays comparable
        for locals in [&sides[1], &sides[0]] {
            let child = Subgraph::induced(&sub, locals);
            let child_to_root: Vec<NodeId> = child
                .parent_ids()
                .iter()
                .map(|&local| to_root[local.index()])
                .collect();
            let (child_graph, _) = child.into_parts();
            stack.push((child_graph, child_to_root, left_depth - 1));
        }
    }
    Ok(RecursivePartition {
        part_of,
        parts: parts as usize,
    })
}

/// Sums parts and cut weight over per-component partitions, mapping
/// nothing back to the original graphs — both sides are summed the same
/// way, so the totals are directly comparable.
fn tally(acc: &mut (usize, f64), partition: &RecursivePartition, component: &Graph) {
    acc.0 += partition.parts;
    acc.1 += partition.cut_weight(component);
}

fn measure(
    label: &str,
    spec: &HotpathSpec,
    probe: AllocProbe<'_>,
    mut front_end: impl FnMut(&[Graph]) -> Result<(usize, f64), PipelineError>,
    graphs: &[Graph],
) -> Result<HotpathMeasurement, PipelineError> {
    // untimed warm-up: fault in code paths and grow arenas to their
    // high-water mark so the timed runs measure the steady state
    let (parts, cut_weight) = front_end(graphs)?;
    let before = probe.map(|p| p());
    let start = Instant::now();
    for _ in 0..spec.iters.max(1) {
        std::hint::black_box(front_end(graphs)?);
    }
    let seconds = start.elapsed().as_secs_f64() / spec.iters.max(1) as f64;
    let after = probe.map(|p| p());
    let per_iter = |f: fn(&AllocSnapshot) -> u64| {
        before
            .as_ref()
            .zip(after.as_ref())
            .map(|(b, a)| (f(a) - f(b)) / spec.iters.max(1) as u64)
    };
    Ok(HotpathMeasurement {
        label: label.to_string(),
        kernel: mec_linalg::kernels::kernel_name().to_string(),
        seconds,
        allocations: per_iter(|s| s.allocations),
        allocated_bytes: per_iter(|s| s.allocated_bytes),
        // peak growth is not divided: it is a high-water delta over the
        // whole timed window (zero once arenas are warm)
        peak_growth_bytes: before
            .as_ref()
            .zip(after.as_ref())
            .map(|(b, a)| a.peak_bytes - b.peak_bytes),
        parts,
        cut_weight,
    })
}

/// The instrumented Fig. 9 front-end loop: compression plus
/// per-component cuts with the same spans and histogram samples
/// `copmecs_core`'s `prepare_user_reusing` emits. All three overhead
/// variants run this exact shape; only the sink differs.
fn instrumented_front_end(
    compressor: &Compressor,
    strategy: &dyn CutStrategy,
    sink: &dyn TraceSink,
    graphs: &[Graph],
    scratch: &mut CutScratch,
) -> Result<(), PipelineError> {
    for g in graphs {
        let s = span(sink, "stage.compression");
        let outcome = compressor.compress_traced(g, sink);
        let compression = s.finish();
        sink.histogram_record(
            "stage.compression_nanos",
            u64::try_from(compression.as_nanos()).unwrap_or(u64::MAX),
        );
        let s = span(sink, "stage.cutting");
        for comp in &outcome.components {
            strategy.cut_reusing(comp.quotient.graph(), scratch)?;
        }
        let cutting = s.finish();
        sink.histogram_record(
            "stage.cutting_nanos",
            u64::try_from(cutting.as_nanos()).unwrap_or(u64::MAX),
        );
    }
    Ok(())
}

/// The same loop with instrumentation compiled out of the call sites
/// entirely — untraced compression, no spans, no samples.
fn bare_front_end(
    compressor: &Compressor,
    strategy: &dyn CutStrategy,
    graphs: &[Graph],
    scratch: &mut CutScratch,
) -> Result<(), PipelineError> {
    for g in graphs {
        let outcome = compressor.compress(g);
        for comp in &outcome.components {
            strategy.cut_reusing(comp.quotient.graph(), scratch)?;
        }
    }
    Ok(())
}

/// Min-of-iters wall time of one front-end variant (one untimed
/// warm-up first). Min is used instead of mean because the overhead
/// deltas being resolved are small against scheduler noise.
fn min_seconds(
    iters: usize,
    mut run_once: impl FnMut() -> Result<(), PipelineError>,
) -> Result<f64, PipelineError> {
    run_once()?;
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(run_once()?);
        best = best.min(start.elapsed().as_secs_f64());
    }
    Ok(best)
}

/// Measures tracing overhead on the Fig. 9 front-end: off vs
/// [`NullSink`] vs live [`ShardedRecorder`]. Runs on whatever kernel
/// variant is currently active.
///
/// # Errors
///
/// [`PipelineError::Cut`] if a component cannot be bipartitioned.
pub fn measure_obs_overhead(
    spec: &HotpathSpec,
    graphs: &[Graph],
) -> Result<ObsOverhead, PipelineError> {
    let compressor = Compressor::new(CompressionConfig::default());
    let iters = spec.iters.max(1);

    let off_seconds = {
        let strategy = StrategyKind::Spectral.build();
        let mut scratch = CutScratch::new();
        min_seconds(iters, || {
            bare_front_end(&compressor, strategy.as_ref(), graphs, &mut scratch)
        })?
    };

    let null_seconds = {
        let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
        let strategy = StrategyKind::Spectral.build_with_sink(Arc::clone(&sink));
        let mut scratch = CutScratch::new();
        min_seconds(iters, || {
            instrumented_front_end(
                &compressor,
                strategy.as_ref(),
                sink.as_ref(),
                graphs,
                &mut scratch,
            )
        })?
    };

    let recorder = Arc::new(ShardedRecorder::new());
    let sharded_seconds = {
        let sink: Arc<dyn TraceSink> = Arc::clone(&recorder) as Arc<dyn TraceSink>;
        let strategy = StrategyKind::Spectral.build_with_sink(Arc::clone(&sink));
        let mut scratch = CutScratch::new();
        min_seconds(iters, || {
            instrumented_front_end(
                &compressor,
                strategy.as_ref(),
                sink.as_ref(),
                graphs,
                &mut scratch,
            )
        })?
    };
    recorder.flush();
    let sharded_records = recorder.spans().len() as u64
        + recorder.events().len() as u64
        + recorder
            .metrics()
            .snapshot()
            .histogram("stage.cutting_nanos")
            .map_or(0, |h| h.count());
    let sharded_dropped = recorder.dropped_records().total();

    Ok(ObsOverhead {
        off_seconds,
        null_seconds,
        sharded_seconds,
        null_overhead: null_seconds / off_seconds - 1.0,
        sharded_overhead: sharded_seconds / off_seconds - 1.0,
        sharded_records,
        sharded_dropped,
    })
}

/// Runs the before/after measurement on the Fig. 9 multi-user
/// front-end workload.
///
/// # Errors
///
/// [`PipelineError::Cut`] if a component cannot be bipartitioned
/// (does not happen on generable workloads).
///
/// # Panics
///
/// Panics if `spec.users == 0` or the workload is not generable.
pub fn run(spec: &HotpathSpec, probe: AllocProbe<'_>) -> Result<HotpathReport, PipelineError> {
    assert!(spec.users > 0, "need at least one user");
    let graphs: Vec<Graph> = (0..spec.users)
        .map(|i| runtime_graph(spec.nodes, spec.seed + i as u64))
        .collect();
    // scenario generation AND compression are hoisted out of the timed
    // closures: both sides partition the same pre-compressed quotient
    // graphs, so the timings isolate the spectral hot path instead of
    // being drowned by netgen + labelprop time that is identical on
    // every side
    let compressor = Compressor::new(CompressionConfig::default());
    let quotients: Vec<Graph> = graphs
        .iter()
        .flat_map(|g| {
            compressor
                .compress(g)
                .components
                .iter()
                .map(|comp| comp.quotient.graph().clone())
                .collect::<Vec<Graph>>()
        })
        .collect();
    let depth = spec.depth;

    // both reference sides run on the scalar kernels, whatever mode the
    // process was in; the prior mode is restored before returning
    let prior_simd = mec_linalg::kernels::simd_enabled();
    mec_linalg::kernels::set_simd_enabled(false);

    let baseline = measure(
        "owned-subgraph cold-start (pre-PR shape)",
        spec,
        probe,
        |quotients| {
            let mut acc = (0usize, 0.0f64);
            for quotient in quotients {
                let p = baseline_partition(quotient, depth, 2)?;
                tally(&mut acc, &p, quotient);
            }
            Ok(acc)
        },
        &quotients,
    )?;

    let optimized_bisector =
        RecursiveBisector::new()
            .max_depth(depth)
            .lanczos_options(LanczosOptions {
                warm_start: true,
                ..LanczosOptions::default()
            });
    let mut scratch = CutScratch::new();
    let mut optimized_run = |label: &str| {
        measure(
            label,
            spec,
            probe,
            |quotients| {
                let mut acc = (0usize, 0.0f64);
                for quotient in quotients {
                    let p = optimized_bisector
                        .partition_reusing(quotient, &mut scratch)
                        .map_err(|e| PipelineError::Cut(e.into()))?;
                    tally(&mut acc, &p, quotient);
                }
                Ok(acc)
            },
            &quotients,
        )
    };
    let optimized = optimized_run("csr-view scratch-arena warm-start")?;

    // the same hot path again under the unrolled kernels, when the
    // binary carries them — one process measures both variants so the
    // report's scalar/simd rows share every other condition
    let optimized_simd = if mec_linalg::kernels::set_simd_enabled(true) {
        Some(optimized_run("csr-view scratch-arena warm-start")?)
    } else {
        None
    };
    mec_linalg::kernels::set_simd_enabled(prior_simd);

    // tracing overhead rides on the same report: the full front-end
    // (compression + cuts) under off / NullSink / sharded-on sinks,
    // measured on the original user graphs since compression is part
    // of the instrumented surface
    let obs_overhead = Some(measure_obs_overhead(spec, &graphs)?);

    let speedup = baseline.seconds / optimized.seconds;
    let simd_speedup = optimized_simd
        .as_ref()
        .map(|s| optimized.seconds / s.seconds);
    let alloc_ratio = baseline
        .allocations
        .zip(optimized.allocations)
        .map(|(b, o)| b as f64 / (o.max(1)) as f64);
    Ok(HotpathReport {
        spec: *spec,
        baseline,
        optimized,
        optimized_simd,
        speedup,
        simd_speedup,
        alloc_ratio,
        obs_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_comparable_sides() {
        let spec = HotpathSpec {
            users: 2,
            nodes: 80,
            seed: 4,
            depth: 2,
            iters: 1,
        };
        let r = run(&spec, None).unwrap();
        assert!(r.baseline.seconds > 0.0);
        assert!(r.optimized.seconds > 0.0);
        assert!(r.speedup > 0.0);
        assert!(r.baseline.parts >= 2);
        assert!(r.optimized.parts >= 2);
        // identical leaf policy and depth: part counts land close even
        // though the two recursions split independently
        let (bp, op) = (r.baseline.parts as f64, r.optimized.parts as f64);
        assert!(
            (bp - op).abs() <= 0.5 * bp.max(op),
            "part counts diverged: baseline {bp} vs optimized {op}"
        );
        // no counting allocator in unit tests
        assert!(r.baseline.allocations.is_none());
        assert!(r.alloc_ratio.is_none());
        // the overhead rows always ride along and carry live evidence
        let obs = r.obs_overhead.expect("obs overhead measured");
        assert!(obs.off_seconds > 0.0);
        assert!(obs.null_seconds > 0.0);
        assert!(obs.sharded_seconds > 0.0);
        assert!(obs.sharded_records > 0, "sharded leg recorded nothing");
        assert_eq!(obs.sharded_dropped, 0);
    }

    #[test]
    fn probe_deltas_are_attached_when_supplied() {
        use std::cell::Cell;
        let calls = Cell::new(0u64);
        let probe = || {
            // monotone fake counters: each probe call advances them
            calls.set(calls.get() + 1);
            AllocSnapshot {
                allocations: calls.get() * 100,
                allocated_bytes: calls.get() * 1000,
                peak_bytes: calls.get() * 10,
            }
        };
        let spec = HotpathSpec {
            users: 1,
            nodes: 60,
            seed: 2,
            depth: 1,
            iters: 1,
        };
        let r = run(&spec, Some(&probe)).unwrap();
        assert!(r.baseline.allocations.is_some());
        assert!(r.optimized.allocated_bytes.is_some());
        assert!(r.optimized.peak_growth_bytes.is_some());
        assert!(r.alloc_ratio.is_some());
    }
}
