//! Property tests for compression: whatever the input graph, the
//! outcome must preserve weights, respect component boundaries, and
//! merge only what the label rule allows.

use mec_labelprop::{propagate_labels, CompressionConfig, Compressor, ThresholdRule};
use mec_netgen::NetgenSpec;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = mec_graph::Graph> {
    (30usize..120, 1usize..4, 0.0f64..0.5, 0u64..1000).prop_map(|(nodes, comps, pin_frac, seed)| {
        // stay well inside per-component pair capacity so every
        // sampled spec is feasible
        let edges = nodes * 2;
        NetgenSpec::new(nodes, edges)
            .components(comps)
            .unoffloadable_fraction(pin_frac)
            .seed(seed)
            .generate()
            .expect("spec is feasible")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compression_conserves_node_weight(g in arb_spec()) {
        let outcome = Compressor::new(CompressionConfig::default()).compress(&g);
        let pinned: f64 = outcome.pinned.iter().map(|&n| g.node_weight(n)).sum();
        let compressed: f64 = outcome
            .components
            .iter()
            .map(|c| c.quotient.graph().total_node_weight())
            .sum();
        prop_assert!((pinned + compressed - g.total_node_weight()).abs() < 1e-6);
    }

    #[test]
    fn compressed_nodes_never_exceed_offloadable(g in arb_spec()) {
        let outcome = Compressor::new(CompressionConfig::default()).compress(&g);
        prop_assert!(outcome.stats.compressed_nodes <= outcome.stats.offloadable_nodes);
        prop_assert!(outcome.stats.compressed_edges <= outcome.stats.offloadable_edges);
        prop_assert!((0.0..=1.0).contains(&outcome.stats.node_reduction()));
        prop_assert!((0.0..=1.0).contains(&outcome.stats.edge_reduction()));
    }

    #[test]
    fn higher_threshold_merges_no_more(g in arb_spec()) {
        let low = Compressor::new(
            CompressionConfig::new().threshold(ThresholdRule::Absolute(5.0)),
        )
        .compress(&g);
        let high = Compressor::new(
            CompressionConfig::new().threshold(ThresholdRule::Absolute(500.0)),
        )
        .compress(&g);
        // a higher threshold lets fewer edges carry labels, so fewer
        // merges happen and more super-nodes remain
        prop_assert!(high.stats.compressed_nodes >= low.stats.compressed_nodes);
    }

    #[test]
    fn labels_cover_every_node_and_rounds_are_bounded(g in arb_spec()) {
        let config = CompressionConfig::default().max_rounds(7);
        let out = propagate_labels(&g, &config);
        prop_assert_eq!(out.labels.len(), g.node_count());
        prop_assert!(out.rounds <= 7);
        // heavy edges connect same-label nodes after convergence more
        // often than light ones (sanity of the label rule): at minimum,
        // every label id is in range
        let max_label = out.labels.iter().copied().max().unwrap_or(0);
        prop_assert!(max_label < g.node_count() * 2);
    }

    #[test]
    fn quotient_groups_partition_each_component(g in arb_spec()) {
        let outcome = Compressor::new(CompressionConfig::default()).compress(&g);
        for comp in &outcome.components {
            let n = comp.subgraph.node_count();
            let covered: usize = comp
                .quotient
                .grouping()
                .members()
                .iter()
                .map(Vec::len)
                .sum();
            prop_assert_eq!(covered, n);
        }
        // pinned + component nodes = all nodes
        let comp_nodes: usize = outcome.components.iter().map(|c| c.subgraph.node_count()).sum();
        prop_assert_eq!(comp_nodes + outcome.pinned.len(), g.node_count());
    }

    #[test]
    fn parallel_matches_serial(g in arb_spec()) {
        let serial = Compressor::new(CompressionConfig::default().parallel(false)).compress(&g);
        let parallel = Compressor::new(CompressionConfig::default().parallel(true)).compress(&g);
        prop_assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn labels_are_invariant_to_kernel_mode(g in arb_spec()) {
        // compression's dense score accumulation is shared by both
        // kernel modes, so the label assignment must be bit-identical
        // whichever mode the process runs in (trivially so in
        // scalar-only builds, where the switch is inert)
        let config = CompressionConfig::default();
        let prior = mec_linalg::kernels::simd_enabled();
        mec_linalg::kernels::set_simd_enabled(false);
        let scalar = propagate_labels(&g, &config);
        mec_linalg::kernels::set_simd_enabled(true);
        let unrolled = propagate_labels(&g, &config);
        mec_linalg::kernels::set_simd_enabled(prior);
        prop_assert_eq!(&scalar.labels, &unrolled.labels);
        prop_assert_eq!(scalar.rounds, unrolled.rounds);
    }
}
