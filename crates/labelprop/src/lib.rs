//! Label-propagation graph compression — the paper's Algorithm 1.
//!
//! Function-level offloading makes the data-flow graph huge, so before
//! any cut is computed the paper *compresses* it (§III-A):
//!
//! 1. unoffloadable functions are removed;
//! 2. the graph is split at component boundaries, and each sub-graph is
//!    processed in parallel;
//! 3. labels spread from the max-degree *starter* node: an edge at
//!    least as heavy as the threshold `w` carries the label across, a
//!    lighter edge mints a fresh label; rounds repeat until the update
//!    rate `α` drops to `α_t` or `β_t` rounds have run;
//! 4. directly-connected nodes with the same label merge into one
//!    super-node ([`mec_graph::QuotientGraph`]), so highly coupled
//!    functions can never be separated by the later cut.
//!
//! The paper's Table I measures exactly what [`CompressionStats`]
//! reports: node/edge counts before and after.
//!
//! # Example
//!
//! ```
//! use mec_labelprop::{Compressor, CompressionConfig};
//! use mec_netgen::NetgenSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = NetgenSpec::new(250, 1214).seed(7).generate()?;
//! let outcome = Compressor::new(CompressionConfig::default()).compress(&g);
//! assert!(outcome.stats.compressed_nodes < outcome.stats.offloadable_nodes);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod config;
mod propagate;

pub use compress::{CompressedComponent, CompressionOutcome, CompressionStats, Compressor};
pub use config::{CompressionConfig, ThresholdRule, TraversalPolicy};
pub use propagate::{propagate_labels, propagate_labels_traced, LabelingOutcome};
