//! Algorithm 1 end to end: removal, split, propagation, merge.

use crate::{propagate_labels_traced, CompressionConfig, LabelingOutcome};
use mec_graph::{Graph, NodeGrouping, NodeId, QuotientGraph, Subgraph};
use mec_obs::{FieldValue, TraceSink};

/// One compressed connected piece of the offloadable graph.
#[derive(Debug, Clone)]
pub struct CompressedComponent {
    /// The offloadable sub-graph, with node mapping back to the full
    /// application graph.
    pub subgraph: Subgraph,
    /// Its compressed (quotient) graph; groups are the merge clusters.
    pub quotient: QuotientGraph,
    /// The label-propagation outcome that produced the grouping.
    pub labeling: LabelingOutcome,
}

/// Aggregate numbers in the shape of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Nodes in the input graph (before removing pinned functions).
    pub original_nodes: usize,
    /// Edges in the input graph.
    pub original_edges: usize,
    /// Nodes that survived unoffloadable removal.
    pub offloadable_nodes: usize,
    /// Edges among offloadable nodes.
    pub offloadable_edges: usize,
    /// Super-nodes after compression (sum over components).
    pub compressed_nodes: usize,
    /// Edges after compression (sum over components).
    pub compressed_edges: usize,
    /// Connected components processed.
    pub components: usize,
    /// Total propagation rounds across components.
    pub rounds: usize,
}

impl CompressionStats {
    /// Fraction of offloadable nodes eliminated, in `[0, 1]`.
    pub fn node_reduction(&self) -> f64 {
        if self.offloadable_nodes == 0 {
            0.0
        } else {
            1.0 - self.compressed_nodes as f64 / self.offloadable_nodes as f64
        }
    }

    /// Fraction of offloadable edges eliminated, in `[0, 1]`.
    pub fn edge_reduction(&self) -> f64 {
        if self.offloadable_edges == 0 {
            0.0
        } else {
            1.0 - self.compressed_edges as f64 / self.offloadable_edges as f64
        }
    }
}

/// The full result of compressing one application graph.
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// Unoffloadable functions removed up front (ids in the input
    /// graph); they always execute locally.
    pub pinned: Vec<NodeId>,
    /// One compressed piece per connected component of the offloadable
    /// graph.
    pub components: Vec<CompressedComponent>,
    /// Table-I-shaped aggregate statistics.
    pub stats: CompressionStats,
}

/// The compression stage (paper Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct Compressor {
    config: CompressionConfig,
}

impl Compressor {
    /// Creates a compressor with the given configuration.
    pub fn new(config: CompressionConfig) -> Self {
        Compressor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CompressionConfig {
        &self.config
    }

    /// Runs Algorithm 1 on `g`:
    /// remove unoffloadable nodes → split into connected components →
    /// propagate labels per component (in parallel when configured) →
    /// merge directly-connected same-label nodes.
    pub fn compress(&self, g: &Graph) -> CompressionOutcome {
        self.compress_traced(g, &mec_obs::NullSink)
    }

    /// [`Compressor::compress`] with telemetry: threads `sink` into
    /// every per-component label propagation (so each round emits a
    /// `labelprop.round` event), bumps `compress.components`, and emits
    /// one `compress.stats` event summarising the Table-I numbers.
    pub fn compress_traced(&self, g: &Graph, sink: &dyn TraceSink) -> CompressionOutcome {
        // line 1: remove unoffloadable functions
        let pinned: Vec<NodeId> = g.node_ids().filter(|&n| !g.is_offloadable(n)).collect();
        let offloadable: Vec<NodeId> = g.node_ids().filter(|&n| g.is_offloadable(n)).collect();
        let off_sub = Subgraph::induced(g, &offloadable);

        // lines 2–4: split at component boundaries. Components of the
        // *offloadable* graph — pinned-node removal may split an app
        // component further, which only helps parallelism.
        let pieces = Subgraph::split_components(off_sub.graph());

        // lines 5–16: per-component propagation + merge
        let config = &self.config;
        let process = |piece: &Subgraph| -> CompressedComponent {
            let labeling = propagate_labels_traced(piece.graph(), config, sink);
            let grouping = merge_grouping(piece.graph(), &labeling.labels);
            let quotient = QuotientGraph::contract(piece.graph(), grouping);
            // remap the piece's nodes to the original graph through the
            // offloadable sub-graph
            let parents: Vec<NodeId> = piece
                .parent_ids()
                .iter()
                .map(|&mid| off_sub.parent_of(mid))
                .collect();
            let subgraph = Subgraph::induced(g, &parents);
            CompressedComponent {
                subgraph,
                quotient,
                labeling,
            }
        };
        let components: Vec<CompressedComponent> = if config.parallel && pieces.len() > 1 {
            std::thread::scope(|scope| {
                // the collect is load-bearing: it spawns every worker
                // before the first join, which is the whole point
                #[allow(clippy::needless_collect)]
                let handles: Vec<_> = pieces.iter().map(|p| scope.spawn(|| process(p))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("compression worker panicked"))
                    .collect()
            })
        } else {
            pieces.iter().map(process).collect()
        };

        let stats = CompressionStats {
            original_nodes: g.node_count(),
            original_edges: g.edge_count(),
            offloadable_nodes: off_sub.node_count(),
            offloadable_edges: off_sub.graph().edge_count(),
            compressed_nodes: components
                .iter()
                .map(|c| c.quotient.graph().node_count())
                .sum(),
            compressed_edges: components
                .iter()
                .map(|c| c.quotient.graph().edge_count())
                .sum(),
            components: components.len(),
            rounds: components.iter().map(|c| c.labeling.rounds).sum(),
        };
        sink.counter_add("compress.components", stats.components as u64);
        if sink.enabled() {
            sink.event(
                "compress.stats",
                &[
                    (
                        "offloadable_nodes",
                        FieldValue::from(stats.offloadable_nodes),
                    ),
                    (
                        "offloadable_edges",
                        FieldValue::from(stats.offloadable_edges),
                    ),
                    ("compressed_nodes", FieldValue::from(stats.compressed_nodes)),
                    ("compressed_edges", FieldValue::from(stats.compressed_edges)),
                    ("components", FieldValue::from(stats.components)),
                    ("rounds", FieldValue::from(stats.rounds)),
                ],
            );
        }
        CompressionOutcome {
            pinned,
            components,
            stats,
        }
    }
}

/// Builds the merge grouping: connected components of the sub-graph
/// restricted to edges whose endpoints share a label (the paper's
/// "any two nodes which are in the same cluster and are connected
/// directly will be merged" rule, closed transitively).
fn merge_grouping(g: &Graph, labels: &[usize]) -> NodeGrouping {
    let n = g.node_count();
    let mut group = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if group[start] != usize::MAX {
            continue;
        }
        group[start] = next;
        queue.push_back(NodeId::new(start));
        while let Some(u) = queue.pop_front() {
            for nb in g.neighbors(u) {
                let v = nb.node.index();
                if group[v] == usize::MAX && labels[v] == labels[u.index()] {
                    group[v] = next;
                    queue.push_back(nb.node);
                }
            }
        }
        next += 1;
    }
    NodeGrouping::from_raw(&group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdRule;
    use mec_graph::GraphBuilder;

    /// Two heavy triangles bridged by one light edge, plus a pinned
    /// node hanging off node 0.
    fn app_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|i| b.add_node(i as f64 + 1.0)).collect();
        let pinned = b.add_pinned_node(100.0);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(n[a], n[c], 10.0).unwrap();
        }
        b.add_edge(n[2], n[3], 1.0).unwrap();
        b.add_edge(n[0], pinned, 3.0).unwrap();
        b.build()
    }

    fn compressor(w: f64) -> Compressor {
        Compressor::new(CompressionConfig::new().threshold(ThresholdRule::Absolute(w)))
    }

    #[test]
    fn pinned_nodes_are_removed_first() {
        let out = compressor(5.0).compress(&app_graph());
        assert_eq!(out.pinned.len(), 1);
        assert_eq!(out.stats.original_nodes, 7);
        assert_eq!(out.stats.offloadable_nodes, 6);
        // the pinned node's edge disappears with it
        assert_eq!(out.stats.offloadable_edges, 7);
    }

    #[test]
    fn triangles_collapse_to_two_supernodes() {
        let out = compressor(5.0).compress(&app_graph());
        assert_eq!(out.stats.components, 1);
        assert_eq!(out.stats.compressed_nodes, 2);
        assert_eq!(out.stats.compressed_edges, 1);
        // the surviving edge is the light bridge
        let q = &out.components[0].quotient;
        assert_eq!(q.graph().total_edge_weight(), 1.0);
        // node weights are conserved: 1+2+3 and 4+5+6
        let mut ws: Vec<f64> = q
            .graph()
            .node_ids()
            .map(|n| q.graph().node_weight(n))
            .collect();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ws, vec![6.0, 15.0]);
    }

    #[test]
    fn zero_merge_when_threshold_is_infinite() {
        let out = compressor(f64::INFINITY).compress(&app_graph());
        assert_eq!(out.stats.compressed_nodes, 6);
        assert_eq!(out.stats.compressed_edges, 7);
        assert!(out.stats.node_reduction().abs() < 1e-12);
    }

    #[test]
    fn reduction_ratios() {
        let out = compressor(5.0).compress(&app_graph());
        assert!((out.stats.node_reduction() - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
        assert!((out.stats.edge_reduction() - (1.0 - 1.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // a graph with several components to actually exercise threads
        let mut b = GraphBuilder::new();
        for comp in 0..5 {
            let base: Vec<_> = (0..8).map(|i| b.add_node((comp * 8 + i) as f64)).collect();
            for k in 1..8 {
                b.add_edge(base[k - 1], base[k], if k % 2 == 0 { 20.0 } else { 1.0 })
                    .unwrap();
            }
        }
        let g = b.build();
        let cfg = CompressionConfig::new().threshold(ThresholdRule::Absolute(5.0));
        let serial = Compressor::new(cfg.clone().parallel(false)).compress(&g);
        let parallel = Compressor::new(cfg.parallel(true)).compress(&g);
        assert_eq!(serial.stats, parallel.stats);
        for (a, b) in serial.components.iter().zip(&parallel.components) {
            assert_eq!(a.labeling, b.labeling);
            assert_eq!(a.quotient.graph(), b.quotient.graph());
        }
    }

    #[test]
    fn subgraph_mapping_reaches_original_nodes() {
        let g = app_graph();
        let out = compressor(5.0).compress(&g);
        let comp = &out.components[0];
        // every member maps back to an offloadable node of the original
        for local in comp.subgraph.graph().node_ids() {
            let orig = comp.subgraph.parent_of(local);
            assert!(g.is_offloadable(orig));
        }
        // quotient grouping covers the subgraph exactly
        assert_eq!(
            comp.quotient.grouping().node_count(),
            comp.subgraph.node_count()
        );
    }

    #[test]
    fn fully_pinned_graph_compresses_to_nothing() {
        let mut b = GraphBuilder::new();
        let a = b.add_pinned_node(1.0);
        let c = b.add_pinned_node(2.0);
        b.add_edge(a, c, 1.0).unwrap();
        let out = Compressor::default().compress(&b.build());
        assert_eq!(out.pinned.len(), 2);
        assert_eq!(out.stats.offloadable_nodes, 0);
        assert!(out.components.is_empty());
        assert_eq!(out.stats.node_reduction(), 0.0);
        assert_eq!(out.stats.edge_reduction(), 0.0);
    }

    #[test]
    fn empty_graph() {
        let out = Compressor::default().compress(&GraphBuilder::new().build());
        assert_eq!(out.stats.original_nodes, 0);
        assert!(out.components.is_empty());
        assert!(out.pinned.is_empty());
    }

    #[test]
    fn figure2_style_subgraph_compresses_ten_nodes_to_three() {
        // The paper's Fig. 2 walks one sub-graph through two propagation
        // rounds and ends with 10 nodes merged into 3 super-nodes. This
        // is the same scenario: three tightly-coupled regions (edge
        // weights ≥ 4) joined by weight-1/2 links.
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..10).map(|_| b.add_node(1.0)).collect();
        // region A: 0-1-2 (weights 4, 6)
        b.add_edge(n[0], n[1], 4.0).unwrap();
        b.add_edge(n[1], n[2], 6.0).unwrap();
        // region B: 3-4-5-6 (weights 5, 4, 4)
        b.add_edge(n[3], n[4], 5.0).unwrap();
        b.add_edge(n[4], n[5], 4.0).unwrap();
        b.add_edge(n[5], n[6], 4.0).unwrap();
        // region C: 7-8-9 (weights 4, 5)
        b.add_edge(n[7], n[8], 4.0).unwrap();
        b.add_edge(n[8], n[9], 5.0).unwrap();
        // weak links between regions (weights 1-3, below the threshold)
        b.add_edge(n[2], n[3], 1.0).unwrap();
        b.add_edge(n[6], n[7], 2.0).unwrap();
        b.add_edge(n[0], n[9], 3.0).unwrap();
        let g = b.build();

        let out = compressor(3.5).compress(&g);
        assert_eq!(out.stats.offloadable_nodes, 10);
        assert_eq!(out.stats.compressed_nodes, 3, "Fig. 2: 10 nodes -> 3");
        // only the weak links survive between super-nodes
        let q = &out.components[0].quotient;
        assert_eq!(q.graph().total_edge_weight(), 6.0);
        assert_eq!(q.absorbed_weight(), 32.0);
    }

    #[test]
    fn merge_grouping_requires_direct_connection() {
        // same label but in different connected pieces must not merge
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 10.0).unwrap();
        b.add_edge(n[2], n[3], 10.0).unwrap();
        let g = b.build();
        // force identical labels everywhere
        let grouping = super::merge_grouping(&g, &[7, 7, 7, 7]);
        assert_eq!(grouping.group_count(), 2);
    }
}
