//! The label-propagation process itself.

use crate::{CompressionConfig, TraversalPolicy};
use mec_graph::{Graph, NodeId};
use mec_obs::{FieldValue, TraceSink};

/// Result of running label propagation on one sub-graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelingOutcome {
    /// Final label of each node (dense node index → label).
    pub labels: Vec<usize>,
    /// Propagation rounds executed (the initial sweep counts as round
    /// 1).
    pub rounds: usize,
    /// The resolved weight threshold `w` used by the label rule.
    pub threshold: f64,
}

impl LabelingOutcome {
    /// Number of distinct labels in the outcome.
    ///
    /// Labels are minted densely (every label is `< labels.len()`), so
    /// a `Vec<bool>` sized by the label universe counts them without
    /// hashing or allocating per element.
    pub fn label_count(&self) -> usize {
        let universe = self.labels.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut seen = vec![false; universe];
        let mut count = 0usize;
        for &l in &self.labels {
            if !seen[l] {
                seen[l] = true;
                count += 1;
            }
        }
        count
    }
}

/// Computes the node visiting order: starting from the max-degree node
/// of each unvisited region, BFS or DFS across *all* edges (the
/// traversal carries labels only across heavy edges, but must reach
/// every node).
fn visit_order(g: &Graph, policy: TraversalPolicy) -> Vec<NodeId> {
    let n = g.node_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    // candidate starters sorted by (degree desc, id asc); degrees are
    // precomputed once so the comparator doesn't recompute them
    // O(n log n) times
    let degrees: Vec<usize> = (0..n).map(|i| g.degree(NodeId::new(i))).collect();
    let mut starters: Vec<usize> = (0..n).collect();
    starters.sort_by(|&a, &b| degrees[b].cmp(&degrees[a]).then(a.cmp(&b)));
    for s in starters {
        if seen[s] {
            continue;
        }
        seen[s] = true;
        match policy {
            TraversalPolicy::Bfs => {
                let mut queue = std::collections::VecDeque::from([NodeId::new(s)]);
                while let Some(u) = queue.pop_front() {
                    order.push(u);
                    // deterministic neighbour order: adjacency insertion order
                    for nb in g.neighbors(u) {
                        if !seen[nb.node.index()] {
                            seen[nb.node.index()] = true;
                            queue.push_back(nb.node);
                        }
                    }
                }
            }
            TraversalPolicy::Dfs => {
                let mut stack = vec![NodeId::new(s)];
                while let Some(u) = stack.pop() {
                    order.push(u);
                    for nb in g.neighbors(u) {
                        if !seen[nb.node.index()] {
                            seen[nb.node.index()] = true;
                            stack.push(nb.node);
                        }
                    }
                }
            }
        }
    }
    order
}

/// Runs the paper's label rule on `g`:
///
/// - the max-degree node starts with label 0;
/// - during the initial sweep an edge *at least as heavy as* `w`
///   carries the current label to an unlabelled neighbour, a lighter
///   edge mints a fresh label (§III-A "Label initialization and
///   propagation"; the comparison is inclusive so threshold rules that
///   resolve to a weight present in the graph — every
///   [`ThresholdRule::Quantile`](crate::ThresholdRule::Quantile), or
///   [`ThresholdRule::MeanFactor`](crate::ThresholdRule::MeanFactor)
///   on a uniform-weight graph — still let the selected edges carry);
/// - subsequent rounds re-visit every node and let it adopt the label
///   with the greatest total incident weight over carrying (`≥ w`)
///   edges;
/// - rounds stop when the update rate `α ≤ α_t` or after `β_t` rounds
///   (§III-A "End of propagation").
///
/// Deterministic: ties break toward the smaller label.
pub fn propagate_labels(g: &Graph, config: &CompressionConfig) -> LabelingOutcome {
    propagate_labels_traced(g, config, &mec_obs::NullSink)
}

/// [`propagate_labels`] with telemetry: emits one `labelprop.round`
/// event per propagation round (round number, updates, update rate `α`,
/// distinct label count) and bumps the `labelprop.rounds` counter on
/// `sink`. Behaviour and result are identical to the untraced entry
/// point; event payloads are only assembled when the sink is enabled.
pub fn propagate_labels_traced(
    g: &Graph,
    config: &CompressionConfig,
    sink: &dyn TraceSink,
) -> LabelingOutcome {
    let n = g.node_count();
    let threshold = config.threshold.resolve(g);
    if n == 0 {
        return LabelingOutcome {
            labels: vec![],
            rounds: 0,
            threshold,
        };
    }
    let order = visit_order(g, config.policy);
    debug_assert_eq!(order.len(), n);

    const UNLABELED: usize = usize::MAX;
    let mut labels = vec![UNLABELED; n];
    let mut next_label = 0usize;

    // round 1: initial sweep
    for &u in &order {
        if labels[u.index()] == UNLABELED {
            labels[u.index()] = next_label;
            next_label += 1;
        }
        let lu = labels[u.index()];
        for nb in g.neighbors(u) {
            if labels[nb.node.index()] == UNLABELED {
                if g.edge_weight(nb.edge) >= threshold {
                    labels[nb.node.index()] = lu;
                } else {
                    labels[nb.node.index()] = next_label;
                    next_label += 1;
                }
            }
        }
    }
    let mut rounds = 1usize;
    let traced = sink.enabled();
    let emit_round = |round: usize, updates: usize, alpha: f64, labels: &[usize]| {
        let distinct = labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        sink.event(
            "labelprop.round",
            &[
                ("round", FieldValue::from(round)),
                ("updates", FieldValue::from(updates)),
                ("alpha", FieldValue::from(alpha)),
                ("labels", FieldValue::from(distinct)),
            ],
        );
    };
    if traced {
        // the initial sweep assigns every node, so by convention it
        // reports updates = n and α = 1.0
        emit_round(1, n, 1.0, &labels);
    }

    // refinement rounds: adopt the heaviest-coupled neighbouring label.
    // Labels are minted densely (every value < next_label), so the
    // per-node score accumulation runs over a flat SoA buffer indexed
    // by label — no hashing, no per-node allocation. `mark` carries an
    // epoch per label so the buffer resets in O(touched) per node.
    // Per-label weights still sum in neighbour order and the selection
    // rule is the same total order (heaviest weight, then smallest
    // label), so labels come out identical to the hashed version.
    let mut scores = vec![0.0f64; next_label];
    let mut mark = vec![0u64; next_label];
    let mut touched: Vec<usize> = Vec::new();
    let mut epoch = 0u64;
    while rounds < config.max_rounds {
        let mut updates = 0usize;
        for &u in &order {
            epoch += 1;
            touched.clear();
            for nb in g.neighbors(u) {
                let w = g.edge_weight(nb.edge);
                if w >= threshold {
                    let l = labels[nb.node.index()];
                    if mark[l] != epoch {
                        mark[l] = epoch;
                        scores[l] = 0.0;
                        touched.push(l);
                    }
                    scores[l] += w;
                }
            }
            if touched.is_empty() {
                continue;
            }
            let current = labels[u.index()];
            let mut best = touched[0];
            let mut best_score = scores[best];
            for &l in &touched[1..] {
                let s = scores[l];
                if s > best_score || (s == best_score && l < best) {
                    best = l;
                    best_score = s;
                }
            }
            if best != current {
                labels[u.index()] = best;
                updates += 1;
            }
        }
        rounds += 1;
        let alpha = updates as f64 / n as f64;
        if traced {
            emit_round(rounds, updates, alpha, &labels);
        }
        if alpha <= config.alpha_threshold {
            break;
        }
    }
    sink.counter_add("labelprop.rounds", rounds as u64);

    LabelingOutcome {
        labels,
        rounds,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdRule;
    use mec_graph::GraphBuilder;
    use std::collections::HashMap;

    /// Two heavy triangles joined by one light edge.
    fn dumbbell() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(1.0)).collect();
        for (a, c) in [(0, 1), (1, 2), (2, 0)] {
            b.add_edge(n[a], n[c], 10.0).unwrap();
        }
        for (a, c) in [(3, 4), (4, 5), (5, 3)] {
            b.add_edge(n[a], n[c], 10.0).unwrap();
        }
        b.add_edge(n[2], n[3], 1.0).unwrap();
        b.build()
    }

    fn config_abs(w: f64) -> CompressionConfig {
        CompressionConfig::new().threshold(ThresholdRule::Absolute(w))
    }

    #[test]
    fn heavy_clusters_share_labels_across_light_bridge() {
        let g = dumbbell();
        let out = propagate_labels(&g, &config_abs(5.0));
        // each triangle collapses to one label; bridge keeps them apart
        assert_eq!(out.labels[0], out.labels[1]);
        assert_eq!(out.labels[1], out.labels[2]);
        assert_eq!(out.labels[3], out.labels[4]);
        assert_eq!(out.labels[4], out.labels[5]);
        assert_ne!(out.labels[0], out.labels[3]);
        assert_eq!(out.label_count(), 2);
    }

    #[test]
    fn infinite_threshold_gives_every_node_its_own_label() {
        let g = dumbbell();
        let out = propagate_labels(&g, &config_abs(f64::INFINITY));
        assert_eq!(out.label_count(), 6);
    }

    #[test]
    fn zero_threshold_merges_connected_graph() {
        let g = dumbbell();
        let out = propagate_labels(&g, &config_abs(0.0));
        assert_eq!(out.label_count(), 1);
    }

    #[test]
    fn bfs_and_dfs_agree_on_clear_clusters() {
        let g = dumbbell();
        let bfs = propagate_labels(&g, &config_abs(5.0).policy(TraversalPolicy::Bfs));
        let dfs = propagate_labels(&g, &config_abs(5.0).policy(TraversalPolicy::Dfs));
        // same partition, possibly different label names
        let canon = |ls: &[usize]| {
            let mut map = HashMap::new();
            ls.iter()
                .map(|l| {
                    let next = map.len();
                    *map.entry(*l).or_insert(next)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(canon(&bfs.labels), canon(&dfs.labels));
    }

    #[test]
    fn rounds_respect_beta_cap() {
        let g = dumbbell();
        let out = propagate_labels(&g, &config_abs(5.0).max_rounds(1));
        assert_eq!(out.rounds, 1);
        let out2 = propagate_labels(&g, &config_abs(5.0).max_rounds(50));
        assert!(out2.rounds <= 50);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let out = propagate_labels(&g, &CompressionConfig::default());
        assert!(out.labels.is_empty());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn isolated_nodes_get_distinct_labels() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(1.0);
        b.add_node(1.0);
        let out = propagate_labels(&b.build(), &CompressionConfig::default());
        assert_eq!(out.label_count(), 3);
    }

    #[test]
    fn deterministic() {
        let g = dumbbell();
        let a = propagate_labels(&g, &CompressionConfig::default());
        let b = propagate_labels(&g, &CompressionConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_weight_graph_merges_under_mean_factor_one() {
        // all edges share one weight → the mean equals every weight;
        // the inclusive carry rule must let them all carry labels
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(1.0)).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1], 4.0).unwrap();
        }
        let g = b.build();
        let cfg = CompressionConfig::new().threshold(ThresholdRule::MeanFactor(1.0));
        let out = propagate_labels(&g, &cfg);
        assert_eq!(out.label_count(), 1, "uniform graph must fully merge");
    }

    #[test]
    fn uniform_weight_graph_merges_under_quantile_rules() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(1.0)).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1], 2.5).unwrap();
        }
        let g = b.build();
        for q in [0.0, 0.5, 1.0] {
            let cfg = CompressionConfig::new().threshold(ThresholdRule::Quantile(q));
            let out = propagate_labels(&g, &cfg);
            assert_eq!(out.label_count(), 1, "Quantile({q}) must merge");
        }
    }

    #[test]
    fn edges_exactly_at_threshold_carry_labels() {
        let g = dumbbell(); // heavy edges weigh exactly 10.0
        let out = propagate_labels(&g, &config_abs(10.0));
        assert_eq!(out.label_count(), 2, "weight == threshold must carry");
    }

    #[test]
    fn visit_order_starts_at_max_degree() {
        let g = dumbbell(); // node 2 and 3 have degree 3
        let order = visit_order(&g, TraversalPolicy::Bfs);
        assert_eq!(order[0], NodeId::new(2));
        assert_eq!(order.len(), 6);
    }
}
