//! Compression tuning parameters.

use mec_graph::Graph;
use serde::{Deserialize, Serialize};

/// How the label-carrying weight threshold `w` is chosen per sub-graph.
///
/// The paper fixes "a weight threshold w" but leaves its value open;
/// an absolute value only suits one workload scale, so the default is
/// relative to the sub-graph's mean edge weight.
///
/// An edge carries a label when its weight is **at least** the
/// resolved `w` (inclusive comparison). This matters whenever the rule
/// resolves to a weight that actually occurs in the graph: a
/// [`Quantile`](ThresholdRule::Quantile) threshold is always one of
/// the edge weights, and [`MeanFactor`](ThresholdRule::MeanFactor)
/// equals every weight on a uniform-weight graph. With a strict
/// comparison those edges would never carry and such graphs would
/// never compress; inclusively, `MeanFactor(1.0)` merges a
/// uniform-weight component completely and `Quantile(q)` lets the
/// heaviest `1 − q` fraction of edges (ties included) carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdRule {
    /// Use this exact value for every sub-graph.
    Absolute(f64),
    /// `w = factor × mean edge weight` of the sub-graph.
    MeanFactor(f64),
    /// `w =` the `q`-quantile (0–1) of the sub-graph's edge weights —
    /// e.g. `Quantile(0.75)` lets the heaviest quarter of edges carry
    /// labels.
    Quantile(f64),
}

impl ThresholdRule {
    /// Resolves the rule against a concrete sub-graph.
    ///
    /// Returns `f64::INFINITY` for an edgeless graph (no edge can carry
    /// a label).
    pub fn resolve(&self, g: &Graph) -> f64 {
        if g.edge_count() == 0 {
            return f64::INFINITY;
        }
        match *self {
            ThresholdRule::Absolute(w) => w,
            ThresholdRule::MeanFactor(f) => f * g.total_edge_weight() / g.edge_count() as f64,
            ThresholdRule::Quantile(q) => {
                let mut ws: Vec<f64> = g.edges().map(|e| e.weight).collect();
                ws.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
                let idx = ((ws.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
                ws[idx]
            }
        }
    }
}

impl Default for ThresholdRule {
    fn default() -> Self {
        ThresholdRule::MeanFactor(1.5)
    }
}

/// Order in which a propagation round visits nodes — the paper allows
/// "depth-first or breadth-first policies".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraversalPolicy {
    /// Breadth-first from the starter (default).
    #[default]
    Bfs,
    /// Depth-first from the starter.
    Dfs,
}

/// Full configuration of the compression stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// Rule producing the label-carrying weight threshold `w`.
    pub threshold: ThresholdRule,
    /// `α_t`: stop when the fraction of nodes whose label changed in a
    /// round drops to this or below. Default `0.05`.
    pub alpha_threshold: f64,
    /// `β_t`: hard cap on propagation rounds. Default `50`.
    pub max_rounds: usize,
    /// Node visiting order within a round.
    pub policy: TraversalPolicy,
    /// Process sub-graphs on parallel threads (Algorithm 1 spawns one
    /// process per sub-graph). Results are identical either way.
    pub parallel: bool,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig {
            threshold: ThresholdRule::default(),
            alpha_threshold: 0.05,
            max_rounds: 50,
            policy: TraversalPolicy::default(),
            parallel: true,
        }
    }
}

impl CompressionConfig {
    /// Default configuration (same as [`Default::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the threshold rule.
    pub fn threshold(mut self, rule: ThresholdRule) -> Self {
        self.threshold = rule;
        self
    }

    /// Sets `α_t`, clamped to `[0, 1]`.
    pub fn alpha_threshold(mut self, a: f64) -> Self {
        self.alpha_threshold = a.clamp(0.0, 1.0);
        self
    }

    /// Sets `β_t` (at least 1).
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.max_rounds = r.max(1);
        self
    }

    /// Sets the traversal policy.
    pub fn policy(mut self, p: TraversalPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Enables or disables per-sub-graph threading.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;

    fn weighted_path() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[3], 9.0).unwrap();
        b.build()
    }

    #[test]
    fn absolute_rule_passes_through() {
        assert_eq!(ThresholdRule::Absolute(3.5).resolve(&weighted_path()), 3.5);
    }

    #[test]
    fn mean_factor_rule() {
        // mean = 4.0; factor 1.5 → 6.0
        let w = ThresholdRule::MeanFactor(1.5).resolve(&weighted_path());
        assert!((w - 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_rule() {
        let g = weighted_path();
        assert_eq!(ThresholdRule::Quantile(0.0).resolve(&g), 1.0);
        assert_eq!(ThresholdRule::Quantile(1.0).resolve(&g), 9.0);
        assert_eq!(ThresholdRule::Quantile(0.5).resolve(&g), 2.0);
    }

    #[test]
    fn edgeless_graph_yields_infinite_threshold() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        let g = b.build();
        assert_eq!(ThresholdRule::default().resolve(&g), f64::INFINITY);
    }

    #[test]
    fn builder_clamps() {
        let c = CompressionConfig::new()
            .alpha_threshold(2.0)
            .max_rounds(0)
            .policy(TraversalPolicy::Dfs)
            .parallel(false);
        assert_eq!(c.alpha_threshold, 1.0);
        assert_eq!(c.max_rounds, 1);
        assert_eq!(c.policy, TraversalPolicy::Dfs);
        assert!(!c.parallel);
    }
}
