//! # COPMECS — multi-user computation offloading for mobile-edge computing
//!
//! A from-scratch Rust reproduction of *"Computation Offloading for
//! Mobile-Edge Computing with Multi-user"* (Dong, Satpute, Shan, Liu,
//! Yu, Yan — IEEE ICDCS 2019): function-level offloading decided by
//! label-propagation graph compression, spectral minimum cuts, and
//! greedy scheme generation over a shared edge server.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`graph`] | `mec-graph` | Function data-flow graphs, bipartitions |
//! | [`linalg`] | `mec-linalg` | Lanczos / tridiagonal-QL eigensolvers |
//! | [`engine`] | `mec-engine` | Data-parallel compute engine (Spark substitute) |
//! | [`netgen`] | `mec-netgen` | NETGEN-style workload generator |
//! | [`app`] | `mec-app` | Synthetic app model + extraction (Soot substitute) |
//! | [`labelprop`] | `mec-labelprop` | Algorithm 1: graph compression |
//! | [`spectral`] | `mec-spectral` | §III-B: Fiedler-vector minimum cuts |
//! | [`baselines`] | `mec-baselines` | Edmonds–Karp, Stoer–Wagner, Kernighan–Lin |
//! | [`model`] | `mec-model` | §II: energy/time cost model, formulas (1)–(6) |
//! | [`obs`] | `mec-obs` | Telemetry: trace sinks, spans, counters, JSON export |
//! | [`core`] | `copmecs-core` | Algorithm 2: the end-to-end offloader |
//!
//! # Quickstart
//!
//! ```
//! use copmecs::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. a workload (here: generated; see mec-app for hand-built apps)
//! let graph = NetgenSpec::new(200, 700).seed(42).generate()?;
//! let scenario = Scenario::new(SystemParams::default())
//!     .with_user(UserWorkload::new("phone-1", graph));
//!
//! // 2. solve with the paper's spectral pipeline
//! let report = Offloader::builder()
//!     .strategy(StrategyKind::Spectral)
//!     .build()
//!     .solve(&scenario)?;
//!
//! // 3. inspect the decision
//! println!(
//!     "offloaded {} of {} functions; E+T = {:.3}",
//!     report.plan[0].count_on(Side::Remote),
//!     200,
//!     report.evaluation.totals.objective(),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use copmecs_core as core;
pub use mec_app as app;
pub use mec_baselines as baselines;
pub use mec_engine as engine;
pub use mec_graph as graph;
pub use mec_labelprop as labelprop;
pub use mec_linalg as linalg;
pub use mec_model as model;
pub use mec_netgen as netgen;
pub use mec_obs as obs;
pub use mec_spectral as spectral;

/// The names most programs need, in one import.
pub mod prelude {
    pub use copmecs_core::{
        force_serial, CutStrategy, ExecBackend, ExecCtx, GreedyMode, OffloadReport, OffloadService,
        OffloadSession, Offloader, ReplanMode, ServiceReport, StrategyKind,
    };
    pub use mec_app::{ApplicationBuilder, FunctionKind, SyntheticAppSpec};
    pub use mec_graph::{Bipartition, Graph, GraphBuilder, NodeId, Side};
    pub use mec_labelprop::{CompressionConfig, Compressor, ThresholdRule};
    pub use mec_model::{AllocationPolicy, Scenario, SystemParams, UserWorkload};
    pub use mec_netgen::NetgenSpec;
    pub use mec_obs::{NullSink, Recorder, ShardedRecorder, TraceSink};
    pub use mec_spectral::{SpectralBisector, SplitRule};
}
