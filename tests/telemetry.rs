//! Telemetry guarantees: tracing never changes results, the recorder
//! sees the whole pipeline, and the exported JSON is well-formed.

use copmecs::obs::FieldValue;
use copmecs::prelude::*;
use std::sync::Arc;

fn crowd(seed: u64, users: usize) -> Scenario {
    let mut s = Scenario::new(SystemParams::default());
    for i in 0..users {
        let g = NetgenSpec::new(250, 750)
            .seed(seed + i as u64)
            .generate()
            .unwrap();
        s = s.with_user(UserWorkload::new(format!("u{i}"), g));
    }
    s
}

/// The default (no sink) and explicit-NullSink pipelines must produce
/// bit-identical reports: the no-op sink may not perturb the solve.
#[test]
fn null_sink_report_is_byte_identical() {
    let s = crowd(11, 2);
    let plain = Offloader::builder().build().solve(&s).unwrap();
    let nulled = Offloader::builder()
        .trace_sink(Arc::new(NullSink) as Arc<dyn TraceSink>)
        .build()
        .solve(&s)
        .unwrap();
    assert_eq!(plain.plan, nulled.plan);
    assert_eq!(
        plain.evaluation.totals.objective().to_bits(),
        nulled.evaluation.totals.objective().to_bits()
    );
    assert_eq!(plain.greedy.moves, nulled.greedy.moves);
    assert_eq!(plain.compression, nulled.compression);
}

/// A live recorder must not perturb the solve either — only observe it.
#[test]
fn recording_does_not_change_the_plan() {
    let s = crowd(12, 2);
    let plain = Offloader::builder().build().solve(&s).unwrap();
    let recorder = Arc::new(Recorder::new());
    let traced = Offloader::builder()
        .trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .build()
        .solve(&s)
        .unwrap();
    assert_eq!(plain.plan, traced.plan);
    assert_eq!(
        plain.evaluation.totals.objective().to_bits(),
        traced.evaluation.totals.objective().to_bits()
    );
}

#[test]
fn recorder_sees_every_pipeline_stage() {
    let s = crowd(13, 2);
    let recorder = Arc::new(Recorder::new());
    Offloader::builder()
        .strategy(StrategyKind::Spectral)
        .trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .build()
        .solve(&s)
        .unwrap();

    // spans: one solve root, stages nested under it, all closed
    let spans = recorder.spans();
    let root = spans
        .iter()
        .find(|sp| sp.name == "pipeline.solve")
        .expect("solve span present");
    for stage in ["stage.compression", "stage.cutting", "stage.greedy"] {
        let sp = spans
            .iter()
            .find(|sp| sp.name == stage)
            .unwrap_or_else(|| panic!("missing span {stage}"));
        assert_eq!(sp.parent, root.id, "{stage} must nest under the solve");
    }
    assert!(spans.iter().all(|sp| sp.end_ns.is_some()));

    // counters from every layer of the pipeline
    for counter in [
        "labelprop.rounds",
        "compress.components",
        "lanczos.iterations",
        "spectral.bisections",
        "greedy.evaluated",
    ] {
        assert!(
            recorder.counter_value(counter) > 0,
            "counter {counter} never incremented"
        );
    }
    assert!(
        recorder.counter_value("greedy.accepted") <= recorder.counter_value("greedy.evaluated")
    );

    // per-round α trajectory: starts at 1.0, never rises
    let alphas: Vec<f64> = recorder
        .events()
        .iter()
        .filter(|e| e.name == "labelprop.round")
        .filter_map(|e| {
            e.fields.iter().find_map(|(k, v)| match (k, v) {
                (&"alpha", FieldValue::F64(a)) => Some(*a),
                _ => None,
            })
        })
        .collect();
    assert!(!alphas.is_empty(), "labelprop.round events missing");
    assert_eq!(alphas[0], 1.0, "first sweep updates every node");
}

#[test]
fn session_counters_track_churn() {
    let recorder = Arc::new(Recorder::new());
    let mut session = OffloadSession::new(SystemParams::default()).with_traced_strategy(
        &StrategyKind::Spectral,
        Arc::clone(&recorder) as Arc<dyn TraceSink>,
    );
    let g = Arc::new(NetgenSpec::new(120, 360).seed(5).generate().unwrap());
    session.join("a", Arc::clone(&g)).unwrap();
    session.join("b", g).unwrap();
    session.replan().unwrap();
    session.leave("a");
    session.replan().unwrap();
    assert_eq!(recorder.counter_value("session.joins"), 2);
    assert_eq!(recorder.counter_value("session.leaves"), 1);
    assert_eq!(recorder.counter_value("session.replans"), 2);
    assert!(recorder.spans().iter().any(|s| s.name == "session.join"));
    assert!(recorder.spans().iter().any(|s| s.name == "session.replan"));
}

/// The exported trace must parse as JSON and survive a parse →
/// serialise → parse round trip unchanged.
#[test]
fn trace_json_round_trips_through_serde() {
    let s = crowd(14, 1);
    let recorder = Arc::new(Recorder::new());
    Offloader::builder()
        .trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .build()
        .solve(&s)
        .unwrap();
    let json = recorder.to_json_string();

    let value: serde::Value = serde_json::from_str(&json).expect("trace is valid JSON");
    let top = value.as_object().expect("trace is a JSON object");
    for key in [
        "version",
        "duration_ns",
        "counters",
        "metrics",
        "spans",
        "events",
        "events_dropped",
    ] {
        assert!(
            serde::find_field(top, key).is_some(),
            "trace lacks top-level key {key}"
        );
    }
    assert_eq!(
        serde::find_field(top, "version"),
        Some(&serde::Value::U64(1))
    );
    let spans = serde::find_field(top, "spans")
        .and_then(|v| v.as_array())
        .expect("spans is an array");
    assert!(!spans.is_empty());
    for sp in spans {
        let fields = sp.as_object().expect("span is an object");
        for key in ["id", "parent", "name", "start_ns", "end_ns", "duration_ns"] {
            assert!(serde::find_field(fields, key).is_some(), "span lacks {key}");
        }
    }

    let reprinted = serde_json::to_string(&value).expect("trace reserialises");
    let reparsed: serde::Value = serde_json::from_str(&reprinted).unwrap();
    assert_eq!(value, reparsed, "round trip must be lossless");
}
