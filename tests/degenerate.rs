//! Degenerate and adversarial workloads through the whole pipeline:
//! the offloader must handle them gracefully, not just the happy path.

use copmecs::prelude::*;

fn solve_one(graph: Graph) -> copmecs::core::OffloadReport {
    let s = Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u", graph));
    Offloader::new().solve(&s).unwrap()
}

#[test]
fn empty_graph_user() {
    let report = solve_one(GraphBuilder::new().build());
    assert_eq!(report.plan[0].len(), 0);
    assert_eq!(report.evaluation.totals.objective(), 0.0);
}

#[test]
fn single_offloadable_node() {
    let mut b = GraphBuilder::new();
    b.add_node(100.0);
    let report = solve_one(b.build());
    // a lone heavy pure function with no communication should offload
    assert_eq!(report.plan[0].count_on(Side::Remote), 1);
}

#[test]
fn single_pinned_node() {
    let mut b = GraphBuilder::new();
    b.add_pinned_node(100.0);
    let report = solve_one(b.build());
    assert_eq!(report.plan[0].count_on(Side::Remote), 0);
    assert_eq!(report.evaluation.totals.tx_energy, 0.0);
}

#[test]
fn fully_pinned_application() {
    let mut b = GraphBuilder::new();
    let n: Vec<_> = (0..5).map(|_| b.add_pinned_node(10.0)).collect();
    for w in n.windows(2) {
        b.add_edge(w[0], w[1], 5.0).unwrap();
    }
    let report = solve_one(b.build());
    assert_eq!(report.plan[0].count_on(Side::Remote), 0);
    assert_eq!(report.compression[0].offloadable_nodes, 0);
    // all-pinned app == all-local evaluation
    assert_eq!(report.evaluation.totals.tx_energy, 0.0);
}

#[test]
fn edgeless_graph_of_isolated_functions() {
    let mut b = GraphBuilder::new();
    for i in 0..10 {
        if i % 2 == 0 {
            b.add_node(50.0);
        } else {
            b.add_pinned_node(1.0);
        }
    }
    let report = solve_one(b.build());
    // no communication at all: every offloadable function goes remote
    assert_eq!(report.plan[0].count_on(Side::Remote), 5);
    assert_eq!(report.evaluation.totals.tx_energy, 0.0);
}

#[test]
fn zero_weight_functions_are_handled() {
    let mut b = GraphBuilder::new();
    let a = b.add_node(0.0);
    let c = b.add_node(0.0);
    b.add_edge(a, c, 0.0).unwrap();
    let report = solve_one(b.build());
    assert_eq!(report.evaluation.totals.objective(), 0.0);
}

#[test]
fn star_graph_with_pinned_hub() {
    // classic sensor-hub shape: everything talks to one pinned hub
    let mut b = GraphBuilder::new();
    let hub = b.add_pinned_node(5.0);
    for _ in 0..20 {
        let leaf = b.add_node(40.0);
        b.add_edge(hub, leaf, 3.0).unwrap();
    }
    let report = solve_one(b.build());
    // leaves are heavy and cheap to detach: they should offload
    assert!(report.plan[0].count_on(Side::Remote) >= 15);
    assert_eq!(report.plan[0].side(mec_graph::NodeId::new(0)), Side::Local);
}

#[test]
fn mixed_crowd_with_empty_and_full_users() {
    let mut heavy = GraphBuilder::new();
    let a = heavy.add_node(80.0);
    let c = heavy.add_node(70.0);
    heavy.add_edge(a, c, 2.0).unwrap();
    let s = Scenario::new(SystemParams::default())
        .with_user(UserWorkload::new("empty", GraphBuilder::new().build()))
        .with_user(UserWorkload::new("heavy", heavy.build()));
    let report = Offloader::new().solve(&s).unwrap();
    assert_eq!(report.plan.len(), 2);
    assert_eq!(report.plan[0].len(), 0);
    assert_eq!(s.validate_plan(&report.plan), Ok(()));
}

#[test]
fn invalid_system_parameters_surface_as_model_errors() {
    let params = SystemParams {
        bandwidth: 0.0,
        ..SystemParams::default()
    };
    let mut b = GraphBuilder::new();
    b.add_node(1.0);
    let s = Scenario::new(params).with_user(UserWorkload::new("u", b.build()));
    let err = Offloader::new().solve(&s).unwrap_err();
    assert!(err.to_string().contains("bandwidth"), "got: {err}");
}

#[test]
fn uniform_weight_graph_compresses_under_inclusive_threshold() {
    // every edge weighs the same, so the mean IS every weight; the
    // inclusive carry rule (>=) must merge the clique instead of
    // leaving the graph uncompressed
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..8).map(|_| b.add_node(10.0)).collect();
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            b.add_edge(nodes[i], nodes[j], 4.0).unwrap();
        }
    }
    let s = Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u", b.build()));
    let report = Offloader::builder()
        .compression(CompressionConfig {
            threshold: ThresholdRule::MeanFactor(1.0),
            ..CompressionConfig::default()
        })
        .build()
        .solve(&s)
        .unwrap();
    let stats = &report.compression[0];
    assert_eq!(stats.offloadable_nodes, 8);
    assert_eq!(
        stats.compressed_nodes, 1,
        "a uniform-weight clique must collapse to one super-node"
    );
}

#[test]
fn uniform_weight_path_compresses_under_quantile_rule() {
    // quantile thresholds always resolve to an existing edge weight;
    // with uniform weights that weight must still carry (>=), so the
    // whole path merges
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..6).map(|_| b.add_node(5.0)).collect();
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1], 2.0).unwrap();
    }
    let s = Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u", b.build()));
    let report = Offloader::builder()
        .compression(CompressionConfig {
            threshold: ThresholdRule::Quantile(0.5),
            ..CompressionConfig::default()
        })
        .build()
        .solve(&s)
        .unwrap();
    let stats = &report.compression[0];
    assert_eq!(stats.compressed_nodes, 1);
}

#[test]
fn enormous_weights_do_not_break_pricing() {
    let mut b = GraphBuilder::new();
    let a = b.add_node(1e12);
    let c = b.add_pinned_node(1e12);
    b.add_edge(a, c, 1e9).unwrap();
    let report = solve_one(b.build());
    assert!(report.evaluation.totals.objective().is_finite());
}
