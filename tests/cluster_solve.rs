//! The cluster-backed solve path must be indistinguishable from the
//! serial one. Since the `ExecCtx` unification there is only ONE
//! `Offloader::solve_with` implementation — these tests pin that the
//! backend choice carried by the context changes wall-clock behaviour
//! only: bit-identical plans at every worker count, batch joins
//! equivalent to repeated joins, failing cut strategies surfacing the
//! same typed error on both backends, and worker panics surfacing as
//! typed pipeline errors instead of hangs or aborts.

use copmecs::core::{CutError, PipelineError};
use copmecs::engine::{Cluster, EngineError};
use copmecs::graph::Bipartition;
use copmecs::prelude::*;
use copmecs::spectral::SpectralError;
use std::sync::Arc;

fn crowd(users: usize, nodes: usize, seed: u64) -> Scenario {
    Scenario::new(SystemParams::default()).with_users((0..users).map(|i| {
        let g = NetgenSpec::new(nodes, nodes * 3)
            .seed(seed + i as u64)
            .generate()
            .expect("generable workload");
        UserWorkload::new(format!("u{i}"), g)
    }))
}

/// The shared parity check: ONE offloader, solved once under a serial
/// [`ExecCtx`] and once per cluster size under a cluster context. The
/// plans and the priced objective must be bit-identical — the backend
/// is a performance channel, never a behavioural one.
fn assert_backend_parity(strategy: StrategyKind, seeds: &[u64], worker_counts: &[usize]) {
    let offloader = Offloader::builder().strategy(strategy).build();
    for &seed in seeds {
        let scenario = crowd(5, 60, seed);
        let serial = offloader
            .solve_with(&mut ExecCtx::serial(), &scenario)
            .expect("serial solve succeeds");
        for &workers in worker_counts {
            let cluster = Arc::new(Cluster::new(workers).unwrap());
            let mut ctx = ExecCtx::cluster(cluster);
            let report = offloader
                .solve_with(&mut ctx, &scenario)
                .expect("cluster solve succeeds");
            assert_eq!(
                serial.plan, report.plan,
                "plan diverged: strategy={} seed={seed} workers={workers}",
                serial.strategy
            );
            assert_eq!(
                serial.evaluation.totals.objective().to_bits(),
                report.evaluation.totals.objective().to_bits(),
                "objective diverged: strategy={} seed={seed} workers={workers}",
                serial.strategy
            );
        }
    }
}

#[test]
fn spectral_plans_are_bit_identical_across_backends() {
    assert_backend_parity(StrategyKind::Spectral, &[3, 57, 91], &[1, 2, 8]);
}

#[test]
fn max_flow_plans_are_bit_identical_across_backends() {
    assert_backend_parity(StrategyKind::MaxFlow, &[3, 57, 91], &[1, 2, 8]);
}

#[test]
fn kernighan_lin_plans_are_bit_identical_across_backends() {
    assert_backend_parity(StrategyKind::KernighanLin, &[3, 57, 91], &[1, 2, 8]);
}

#[test]
fn multilevel_plans_are_bit_identical_across_backends() {
    assert_backend_parity(StrategyKind::Multilevel, &[3, 57], &[2, 8]);
}

#[test]
fn builder_cluster_and_explicit_ctx_agree() {
    // configuring the cluster on the builder (`Offloader::solve` builds
    // the ctx internally) must match handing solve_with an explicit
    // cluster context
    let scenario = crowd(4, 50, 11);
    let cluster = Arc::new(Cluster::new(3).unwrap());
    let via_builder = Offloader::builder()
        .cluster(Arc::clone(&cluster))
        .build()
        .solve(&scenario)
        .unwrap();
    let via_ctx = Offloader::new()
        .solve_with(&mut ExecCtx::cluster(cluster), &scenario)
        .unwrap();
    assert_eq!(via_builder.plan, via_ctx.plan);
}

#[test]
fn spectral_parallel_plans_match_serial_spectral_bit_for_bit() {
    // the distributed Laplacian operator accumulates rows in the same
    // order as the serial CSR kernel, so with warm-start off (the
    // default) the eigensolver — and therefore the whole plan — must
    // be bit-identical at every worker and block count
    for seed in [3u64, 57, 91] {
        let scenario = crowd(4, 70, seed);
        let serial = Offloader::builder()
            .strategy(StrategyKind::Spectral)
            .build()
            .solve(&scenario)
            .unwrap();
        for workers in [1usize, 3, 8] {
            for blocks in [1usize, 4, 16] {
                let cluster = Arc::new(Cluster::new(workers).unwrap());
                let report = Offloader::builder()
                    .strategy(StrategyKind::SpectralParallel { cluster, blocks })
                    .build()
                    .solve(&scenario)
                    .unwrap();
                assert_eq!(
                    serial.plan, report.plan,
                    "plan diverged: seed={seed} workers={workers} blocks={blocks}"
                );
                assert_eq!(
                    serial.evaluation.totals.objective().to_bits(),
                    report.evaluation.totals.objective().to_bits(),
                    "objective diverged: seed={seed} workers={workers} blocks={blocks}"
                );
            }
        }
    }
}

#[test]
fn join_many_matches_repeated_joins_bit_for_bit() {
    let graphs: Vec<Arc<Graph>> = (0..4)
        .map(|i| Arc::new(NetgenSpec::new(50, 160).seed(40 + i).generate().unwrap()))
        .collect();

    let mut one_by_one = OffloadSession::new(SystemParams::default());
    for (i, g) in graphs.iter().enumerate() {
        one_by_one.join(format!("u{i}"), Arc::clone(g)).unwrap();
    }

    // the batched session runs its joins under a cluster context,
    // handed over wholesale via with_exec_ctx
    let ctx = ExecCtx::cluster(Arc::new(Cluster::new(3).unwrap()));
    let mut batched = OffloadSession::new(SystemParams::default()).with_exec_ctx(ctx);
    batched
        .join_many(
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| (format!("u{i}"), Arc::clone(g))),
        )
        .unwrap();

    let a = one_by_one.replan().unwrap();
    let b = batched.replan().unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(
        a.evaluation.totals.objective().to_bits(),
        b.evaluation.totals.objective().to_bits()
    );
}

/// Strategy whose every cut fails with a typed error — drives the
/// error path without panicking any thread.
#[derive(Debug, Clone)]
struct FailingStrategy;

impl CutStrategy for FailingStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "failing"
    }

    fn cut(&self, _g: &Graph) -> Result<Bipartition, CutError> {
        Err(CutError::from(SpectralError::EmptyGraph))
    }
}

#[test]
fn failing_strategy_surfaces_the_same_cut_error_on_both_backends() {
    // the unified path must not launder a task's typed error into an
    // engine error: a failing cut is PipelineError::Cut on BOTH
    // backends, with the lowest-index task's failure winning
    let scenario = crowd(3, 40, 7);
    let offloader = Offloader::builder().build_with_strategy(Box::new(FailingStrategy));

    let serial_err = offloader
        .solve_with(&mut ExecCtx::serial(), &scenario)
        .unwrap_err();
    assert!(
        matches!(
            serial_err,
            PipelineError::Cut(CutError::Spectral(SpectralError::EmptyGraph))
        ),
        "serial backend: expected the strategy's cut error, got: {serial_err}"
    );

    let cluster = Arc::new(Cluster::new(2).unwrap());
    let cluster_err = offloader
        .solve_with(&mut ExecCtx::cluster(cluster), &scenario)
        .unwrap_err();
    assert!(
        matches!(
            cluster_err,
            PipelineError::Cut(CutError::Spectral(SpectralError::EmptyGraph))
        ),
        "cluster backend: expected the strategy's cut error, got: {cluster_err}"
    );
}

/// Strategy that panics on every cut — drives the worker-failure path.
#[derive(Debug, Clone)]
struct ExplodingStrategy;

impl CutStrategy for ExplodingStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "exploding"
    }

    fn cut(&self, _g: &Graph) -> Result<Bipartition, copmecs::core::CutError> {
        panic!("cut stage exploded");
    }
}

#[test]
fn panicking_strategy_surfaces_as_pipeline_error_not_hang() {
    if force_serial() {
        // under MEC_FORCE_SERIAL the panic stays on the calling thread
        // (serial backend has no worker isolation); nothing to check
        return;
    }
    let scenario = crowd(3, 40, 7);
    let offloader = Offloader::builder()
        .cluster(Arc::new(Cluster::new(2).unwrap()))
        .build_with_strategy(Box::new(ExplodingStrategy));
    let err = offloader.solve(&scenario).unwrap_err();
    match err {
        PipelineError::Engine(EngineError::WorkerFailed { message, .. }) => {
            assert_eq!(message.as_deref(), Some("cut stage exploded"));
        }
        other => panic!("expected an engine worker failure, got: {other}"),
    }
}
