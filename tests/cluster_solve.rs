//! The cluster-backed solve path must be indistinguishable from the
//! serial one: bit-identical plans at every worker count, batch joins
//! equivalent to repeated joins, and worker panics surfaced as typed
//! pipeline errors instead of hangs or aborts.

use copmecs::core::PipelineError;
use copmecs::engine::{Cluster, EngineError};
use copmecs::graph::Bipartition;
use copmecs::prelude::*;
use std::sync::Arc;

fn crowd(users: usize, nodes: usize, seed: u64) -> Scenario {
    Scenario::new(SystemParams::default()).with_users((0..users).map(|i| {
        let g = NetgenSpec::new(nodes, nodes * 3)
            .seed(seed + i as u64)
            .generate()
            .expect("generable workload");
        UserWorkload::new(format!("u{i}"), g)
    }))
}

#[test]
fn cluster_plans_are_bit_identical_across_strategies_seeds_and_workers() {
    let strategies = [
        StrategyKind::Spectral,
        StrategyKind::MaxFlow,
        StrategyKind::KernighanLin,
    ];
    for strategy in strategies {
        for seed in [3u64, 57, 91] {
            let scenario = crowd(5, 60, seed);
            let serial = Offloader::builder()
                .strategy(strategy.clone())
                .build()
                .solve(&scenario)
                .unwrap();
            for workers in [1usize, 2, 8] {
                let cluster = Arc::new(Cluster::new(workers).unwrap());
                let report = Offloader::builder()
                    .strategy(strategy.clone())
                    .cluster(cluster)
                    .build()
                    .solve(&scenario)
                    .unwrap();
                assert_eq!(
                    serial.plan, report.plan,
                    "plan diverged: strategy={} seed={seed} workers={workers}",
                    serial.strategy
                );
                assert_eq!(
                    serial.evaluation.totals.objective().to_bits(),
                    report.evaluation.totals.objective().to_bits(),
                    "objective diverged: strategy={} seed={seed} workers={workers}",
                    serial.strategy
                );
            }
        }
    }
}

#[test]
fn spectral_parallel_plans_match_serial_spectral_bit_for_bit() {
    // the distributed Laplacian operator accumulates rows in the same
    // order as the serial CSR kernel, so with warm-start off (the
    // default) the eigensolver — and therefore the whole plan — must
    // be bit-identical at every worker and block count
    for seed in [3u64, 57, 91] {
        let scenario = crowd(4, 70, seed);
        let serial = Offloader::builder()
            .strategy(StrategyKind::Spectral)
            .build()
            .solve(&scenario)
            .unwrap();
        for workers in [1usize, 3, 8] {
            for blocks in [1usize, 4, 16] {
                let cluster = Arc::new(Cluster::new(workers).unwrap());
                let report = Offloader::builder()
                    .strategy(StrategyKind::SpectralParallel { cluster, blocks })
                    .build()
                    .solve(&scenario)
                    .unwrap();
                assert_eq!(
                    serial.plan, report.plan,
                    "plan diverged: seed={seed} workers={workers} blocks={blocks}"
                );
                assert_eq!(
                    serial.evaluation.totals.objective().to_bits(),
                    report.evaluation.totals.objective().to_bits(),
                    "objective diverged: seed={seed} workers={workers} blocks={blocks}"
                );
            }
        }
    }
}

#[test]
fn join_many_matches_repeated_joins_bit_for_bit() {
    let graphs: Vec<Arc<Graph>> = (0..4)
        .map(|i| Arc::new(NetgenSpec::new(50, 160).seed(40 + i).generate().unwrap()))
        .collect();

    let mut one_by_one = OffloadSession::new(SystemParams::default());
    for (i, g) in graphs.iter().enumerate() {
        one_by_one.join(format!("u{i}"), Arc::clone(g)).unwrap();
    }

    let mut batched = OffloadSession::new(SystemParams::default())
        .with_cluster(Arc::new(Cluster::new(3).unwrap()));
    batched
        .join_many(
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| (format!("u{i}"), Arc::clone(g))),
        )
        .unwrap();

    let a = one_by_one.replan().unwrap();
    let b = batched.replan().unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(
        a.evaluation.totals.objective().to_bits(),
        b.evaluation.totals.objective().to_bits()
    );
}

/// Strategy that panics on every cut — drives the worker-failure path.
#[derive(Debug, Clone)]
struct ExplodingStrategy;

impl CutStrategy for ExplodingStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "exploding"
    }

    fn cut(&self, _g: &Graph) -> Result<Bipartition, copmecs::core::CutError> {
        panic!("cut stage exploded");
    }
}

#[test]
fn panicking_strategy_surfaces_as_pipeline_error_not_hang() {
    let scenario = crowd(3, 40, 7);
    let offloader = Offloader::builder()
        .cluster(Arc::new(Cluster::new(2).unwrap()))
        .build_with_strategy(Box::new(ExplodingStrategy));
    let err = offloader.solve(&scenario).unwrap_err();
    match err {
        PipelineError::Engine(EngineError::WorkerFailed { message, .. }) => {
            assert_eq!(message.as_deref(), Some("cut stage exploded"));
        }
        other => panic!("expected an engine worker failure, got: {other}"),
    }
}
