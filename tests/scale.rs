//! Scale tests (run with `cargo test --test scale -- --ignored`):
//! the paper's largest configurations, end to end, with loose wall-time
//! budgets so regressions that blow up complexity get caught.

use copmecs::prelude::*;
use std::sync::Arc;
use std::time::Instant;

#[test]
#[ignore = "scale test: ~20 s, run explicitly"]
fn paper_scale_single_user_5000_nodes() {
    let g = NetgenSpec::paper_network(5000, 40243)
        .seed(1)
        .generate()
        .unwrap();
    let scenario = Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u", g));
    let t0 = Instant::now();
    let report = Offloader::new().solve(&scenario).unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(scenario.validate_plan(&report.plan), Ok(()));
    assert!(report.compression[0].node_reduction() > 0.5);
    assert!(
        elapsed.as_secs() < 60,
        "5000-node pipeline took {elapsed:?}, complexity regression?"
    );
}

#[test]
#[ignore = "scale test: ~1 min, run explicitly"]
fn paper_scale_5000_users() {
    let pool: Vec<Arc<Graph>> = (0..8)
        .map(|i| {
            Arc::new(
                NetgenSpec::paper_network(1000, 4912)
                    .seed(100 + i)
                    .generate()
                    .unwrap(),
            )
        })
        .collect();
    let params = SystemParams {
        server_capacity: 10.0 * 5000.0 * 0.5,
        ..SystemParams::default()
    };
    let scenario = Scenario::new(params).with_users(
        (0..5000).map(|i| UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % 8]))),
    );
    let t0 = Instant::now();
    let report = Offloader::new().solve(&scenario).unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(report.plan.len(), 5000);
    let all_local = scenario.evaluate_all_local().unwrap();
    assert!(report.evaluation.totals.objective() <= all_local.totals.objective() + 1e-6);
    assert!(
        elapsed.as_secs() < 300,
        "5000-user pipeline took {elapsed:?}, complexity regression?"
    );
}

#[test]
#[ignore = "scale test: ~30 s, run explicitly"]
fn session_churn_at_scale() {
    let params = SystemParams {
        server_capacity: 5000.0,
        ..SystemParams::default()
    };
    let mut session = copmecs::core::OffloadSession::new(params);
    let pool: Vec<Arc<Graph>> = (0..4)
        .map(|i| {
            Arc::new(
                NetgenSpec::paper_network(1000, 4912)
                    .seed(50 + i)
                    .generate()
                    .unwrap(),
            )
        })
        .collect();
    for i in 0..500usize {
        session
            .join(format!("u{i}"), Arc::clone(&pool[i % 4]))
            .unwrap();
    }
    // replans after warm-up must be fast: all per-user work is cached
    let t0 = Instant::now();
    let report = session.replan().unwrap();
    let replan_time = t0.elapsed();
    assert_eq!(report.plan.len(), 500);
    assert!(
        replan_time.as_secs_f64() < 10.0,
        "cached replan took {replan_time:?}"
    );
}
