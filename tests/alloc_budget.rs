//! Allocation budget for the spectral hot path.
//!
//! The perf contract this file pins (referenced from
//! `mec_linalg::LanczosScratch` and `mec_spectral::CutScratch` docs):
//!
//! - a warm [`lanczos_with`] re-run at the same dimension performs
//!   **zero** heap allocations — the recurrence inner loop lives
//!   entirely in pooled buffers, which is what makes recursion levels
//!   ≥ 2 of [`RecursiveBisector::partition_reusing`] allocation-free
//!   in the eigensolver;
//! - a warm `partition_reusing` run allocates a small fraction of its
//!   cold first run;
//! - toggling `LanczosOptions::warm_start` changes wall-time only, not
//!   cut quality.
//!
//! The counting allocator is process-global, so the measuring tests
//! serialise on a mutex and take the minimum over several attempts —
//! a concurrent harness thread can only inflate a sample, never
//! deflate it.

use copmecs::linalg::{lanczos_with, CsrMatrix, LanczosOptions, LanczosScratch};
use copmecs::prelude::*;
use copmecs::spectral::{CutScratch, RecursiveBisector};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates to `System` verbatim; the counter update has no
// safety obligations.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serialises the measuring tests: the counter is process-global.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Heap allocations performed while `f` runs (on any thread — callers
/// hold [`MEASURE_LOCK`] and take minima to stay robust).
fn alloc_delta(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn laplacian(nodes: usize, edges: usize, seed: u64) -> CsrMatrix {
    let g = NetgenSpec::new(nodes, edges)
        .components(1)
        .seed(seed)
        .generate()
        .expect("generable workload");
    let triples: Vec<(usize, usize, f64)> = g
        .edges()
        .map(|e| (e.source.index(), e.target.index(), e.weight))
        .collect();
    CsrMatrix::laplacian_from_edges(g.node_count(), &triples).expect("valid laplacian")
}

#[test]
fn warm_lanczos_rerun_is_allocation_free() {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let l = laplacian(200, 600, 17);
    let opts = LanczosOptions::default();
    let mut scratch = LanczosScratch::new();
    let run = |scratch: &mut LanczosScratch| {
        let r = lanczos_with(&l, 80, &opts, None, &copmecs::obs::NullSink, scratch).unwrap();
        assert_eq!(r.alphas.len(), 80);
    };
    // two warm-ups: the first grows the pool, the second grows the
    // pool vector itself to its high-water capacity
    run(&mut scratch);
    run(&mut scratch);
    let min_delta = (0..3)
        .map(|_| alloc_delta(|| run(&mut scratch)))
        .min()
        .unwrap();
    assert_eq!(min_delta, 0, "warm Lanczos re-run must not touch the heap");
}

#[test]
fn warm_partition_rerun_allocates_a_fraction_of_the_cold_run() {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let g = NetgenSpec::new(300, 900)
        .components(1)
        .seed(23)
        .generate()
        .expect("generable workload");
    let bisector = RecursiveBisector::new()
        .max_depth(3)
        .lanczos_options(LanczosOptions {
            warm_start: true,
            ..LanczosOptions::default()
        });
    let mut scratch = CutScratch::new();
    let cold = alloc_delta(|| {
        bisector.partition_reusing(&g, &mut scratch).unwrap();
    });
    // one extra warm-up so every pool reaches its high-water mark
    bisector.partition_reusing(&g, &mut scratch).unwrap();
    let warm = (0..3)
        .map(|_| {
            alloc_delta(|| {
                bisector.partition_reusing(&g, &mut scratch).unwrap();
            })
        })
        .min()
        .unwrap();
    // the recurrence itself is allocation-free once warm (previous
    // test); what remains on a warm partition run is per-cut result
    // assembly plus the small tridiagonal checkpoint workspaces, so
    // the total must sit well below the cold run but not at zero
    assert!(
        warm * 4 <= cold * 3,
        "warm run should allocate at most three quarters of the cold run, got {warm} vs {cold}"
    );
}

/// The disabled observability hot path — [`NullSink`] histogram
/// records and handles from a disabled [`MetricsRegistry`] — must stay
/// strictly allocation-free: these calls sit inside the Lanczos and
/// stage loops, and a hidden heap touch there would tax every
/// untraced pipeline run.
#[test]
fn disabled_metrics_hot_path_is_allocation_free() {
    use copmecs::obs::metrics::MetricsRegistry;
    use copmecs::obs::TraceSink;
    use std::time::Duration;

    let _guard = MEASURE_LOCK.lock().unwrap();
    let disabled = MetricsRegistry::disabled();
    let hist = disabled.histogram("stage.compression_nanos");
    let ctr = disabled.counter("engine.worker_busy_nanos");
    let gauge = disabled.gauge("engine.live_workers");
    let delta = alloc_delta(|| {
        for i in 0..10_000u64 {
            NullSink.histogram_record("lanczos.iterations", i);
            NullSink.counter_add("lanczos.restarts", 1);
            hist.record(i);
            hist.record_duration(Duration::from_nanos(i));
            ctr.add(i);
            gauge.set(i as i64);
        }
        // recording through the disabled registry itself is a no-op too
        disabled.record_histogram("stage.cutting_nanos", 7);
        disabled.add_counter("engine.tasks", 1);
    });
    assert_eq!(delta, 0, "disabled metrics path must not touch the heap");
}

/// An untraced solve and a NullSink-traced solve must produce
/// bit-identical plans, and wiring the NullSink in must not add heap
/// allocations to the solve (the histogram-record call sites compile
/// down to branch-only no-ops).
#[test]
fn null_sink_solve_is_bit_identical_and_allocation_neutral() {
    use copmecs::obs::NullSink;
    use copmecs_core::Offloader;
    use std::sync::Arc;

    let _guard = MEASURE_LOCK.lock().unwrap();
    let g = NetgenSpec::new(150, 450)
        .seed(31)
        .generate()
        .expect("generable workload");
    let scenario =
        Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u0", Arc::new(g)));
    let plain = Offloader::new();
    let nulled = Offloader::builder()
        .trace_sink(Arc::new(NullSink) as Arc<dyn TraceSink>)
        .build();

    let plain_report = plain.solve(&scenario).unwrap();
    let nulled_report = nulled.solve(&scenario).unwrap();
    assert_eq!(
        plain_report.plan, nulled_report.plan,
        "NullSink must not perturb the plan"
    );

    // min over repeats: a concurrent harness thread can only inflate a
    // sample, never deflate it
    let measure = |off: &Offloader| {
        (0..3)
            .map(|_| alloc_delta(|| drop(off.solve(&scenario).unwrap())))
            .min()
            .unwrap()
    };
    let plain_allocs = measure(&plain);
    let nulled_allocs = measure(&nulled);
    assert!(
        nulled_allocs <= plain_allocs,
        "NullSink solve allocated more than the untraced solve: {nulled_allocs} vs {plain_allocs}"
    );
}

/// The *enabled* sharded observability hot path must also stay
/// allocation-free once warm: spans, events, histogram samples, and
/// counter increments all land in pre-sized per-thread SPSC rings (or
/// cached counter cells), so after one warm-up round — which interns
/// the names, attaches the thread to a shard, and grows the span stack
/// to its high-water depth — recording never touches the heap. This is
/// the wait-free contract that lets the engine's workers trace without
/// taxing the pipeline.
#[test]
fn warm_sharded_recording_is_allocation_free() {
    use copmecs::obs::{FieldValue, ShardConfig, ShardedRecorder, TraceSink};

    let _guard = MEASURE_LOCK.lock().unwrap();
    let rec = ShardedRecorder::with_config(ShardConfig {
        shards: 2,
        capacity: 1 << 15,
        // no aggregator thread: the measurement pins the producer side
        // alone, and manual flushes between rounds keep the rings empty
        drain_interval: None,
        ..ShardConfig::default()
    });
    let round = |rec: &ShardedRecorder| {
        for i in 0..64u64 {
            let guard = copmecs::obs::span(rec, "alloc.unit");
            rec.counter_add("alloc.count", 1);
            rec.event("alloc.tick", &[("i", FieldValue::U64(i))]);
            rec.histogram_record("alloc.nanos", i + 1);
            guard.finish();
        }
    };
    round(&rec);
    rec.flush();
    let min_delta = (0..3)
        .map(|_| {
            let d = alloc_delta(|| round(&rec));
            rec.flush();
            d
        })
        .min()
        .unwrap();
    assert_eq!(
        min_delta, 0,
        "warm sharded recording must not touch the heap"
    );
}

/// A steady-state [`OffloadSession::replan`] evaluates the live crowd
/// directly — it must NOT rebuild a `Scenario` (re-collecting every
/// user's name and graph handle) per call. This pins the allocation
/// count of a warm replan against a calibrated ceiling sized for the
/// greedy pass plus plan/evaluation assembly alone; a regression back
/// to per-call scenario rebuilding blows well past it.
#[test]
fn steady_state_replan_allocations_stay_pinned() {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let mut session = OffloadSession::new(SystemParams::default());
    for i in 0..6u64 {
        let g = NetgenSpec::new(60, 180)
            .seed(100 + i)
            .generate()
            .expect("generable workload");
        session
            .join(format!("u{i}"), std::sync::Arc::new(g))
            .unwrap();
    }
    // warm-up: interns strings, grows any lazily-sized buffers
    session.replan().unwrap();
    let warm = (0..5)
        .map(|_| alloc_delta(|| drop(session.replan().unwrap())))
        .min()
        .unwrap();
    // calibrated: a 6-user replan measures ~215 allocations (greedy
    // part-system + per-user costs + report assembly); the ceiling
    // leaves ~2.5x headroom while staying low enough that per-call
    // scenario rebuilding (one clone per user per replan on top)
    // cannot creep back in unnoticed
    assert!(
        warm <= 600,
        "steady-state replan allocation count regressed: {warm} > 600"
    );
}

#[test]
fn warm_start_toggle_preserves_cut_quality_across_seeds() {
    for seed in [5u64, 11, 23, 42] {
        let g = NetgenSpec::new(260, 780)
            .components(1)
            .seed(seed)
            .generate()
            .expect("generable workload");
        let cold = RecursiveBisector::new().max_depth(2).partition(&g).unwrap();
        let mut scratch = CutScratch::new();
        let warm = RecursiveBisector::new()
            .max_depth(2)
            .lanczos_options(LanczosOptions {
                warm_start: true,
                ..LanczosOptions::default()
            })
            .partition_reusing(&g, &mut scratch)
            .unwrap();
        assert_eq!(cold.parts, warm.parts, "seed {seed}");
        let (cw, ww) = (cold.cut_weight(&g), warm.cut_weight(&g));
        assert!(
            (cw - ww).abs() <= 0.05 * cw.max(ww) + 1e-9,
            "cut quality diverged at seed {seed}: cold {cw} vs warm {ww}"
        );
    }
}
