//! Multi-user behaviour of the whole pipeline: server contention,
//! allocation policies, crowd monotonicity.

use copmecs::prelude::*;
use std::sync::Arc;

fn crowd(users: usize, policy: AllocationPolicy, server_capacity: f64) -> Scenario {
    let pool: Vec<Arc<Graph>> = (0..3)
        .map(|i| Arc::new(NetgenSpec::new(120, 420).seed(100 + i).generate().unwrap()))
        .collect();
    let params = SystemParams {
        allocation: policy,
        server_capacity,
        ..SystemParams::default()
    };
    Scenario::new(params).with_users(
        (0..users).map(|i| UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % 3]))),
    )
}

fn offloaded_work_fraction(report: &copmecs::core::OffloadReport, s: &Scenario) -> f64 {
    let mut remote = 0.0;
    let mut total = 0.0;
    for (user, plan) in s.users().iter().zip(&report.plan) {
        let g = user.graph();
        remote += plan.node_weight_on(g, Side::Remote);
        total += g.total_node_weight();
    }
    remote / total
}

#[test]
fn growing_crowds_never_offload_more() {
    let offloader = Offloader::new();
    let mut last = f64::INFINITY;
    for users in [2usize, 8, 32] {
        let s = crowd(users, AllocationPolicy::EqualShare, 800.0);
        let report = offloader.solve(&s).unwrap();
        let frac = offloaded_work_fraction(&report, &s);
        assert!(
            frac <= last + 1e-9,
            "{users} users offload {frac}, more than smaller crowd {last}"
        );
        last = frac;
    }
}

#[test]
fn mid_sized_crowd_reaches_partial_equilibrium() {
    // the server can profitably host only part of this crowd's work:
    // the plan must offload something, but strictly less work than the
    // same crowd with an oversized server
    let contended = crowd(24, AllocationPolicy::EqualShare, 120.0);
    let relaxed = crowd(24, AllocationPolicy::EqualShare, 50_000.0);
    let offloader = Offloader::new();
    let frac_contended = offloaded_work_fraction(&offloader.solve(&contended).unwrap(), &contended);
    let frac_relaxed = offloaded_work_fraction(&offloader.solve(&relaxed).unwrap(), &relaxed);
    assert!(
        frac_contended > 0.0,
        "contended crowd should still offload a little"
    );
    assert!(
        frac_contended < frac_relaxed - 0.05,
        "contention must visibly reduce offloading: {frac_contended} vs {frac_relaxed}"
    );
}

#[test]
fn all_policies_yield_valid_plans_with_consistent_energy() {
    for policy in [
        AllocationPolicy::EqualShare,
        AllocationPolicy::ProportionalToLoad,
        AllocationPolicy::Fifo,
    ] {
        let s = crowd(6, policy, 2000.0);
        let report = Offloader::new().solve(&s).unwrap();
        assert_eq!(s.validate_plan(&report.plan), Ok(()));
        // energy is plan-determined, never policy-priced
        let t = &report.evaluation.totals;
        assert!((t.energy - (t.local_energy + t.tx_energy)).abs() < 1e-9);
        // time components add up
        assert!((t.time - (t.local_time + t.remote_time + t.tx_time)).abs() < 1e-9);
    }
}

#[test]
fn bigger_server_never_hurts() {
    let offloader = Offloader::new();
    let small = offloader
        .solve(&crowd(12, AllocationPolicy::EqualShare, 300.0))
        .unwrap();
    let big = offloader
        .solve(&crowd(12, AllocationPolicy::EqualShare, 3000.0))
        .unwrap();
    assert!(
        big.evaluation.totals.objective() <= small.evaluation.totals.objective() + 1e-6,
        "more server capacity must not worsen the objective"
    );
}

#[test]
fn per_user_costs_sum_to_totals() {
    let s = crowd(5, AllocationPolicy::EqualShare, 1000.0);
    let report = Offloader::new().solve(&s).unwrap();
    let e = &report.evaluation;
    let sum_local: f64 = e.per_user.iter().map(|c| c.local_energy).sum();
    let sum_tx: f64 = e.per_user.iter().map(|c| c.tx_energy).sum();
    assert!((sum_local - e.totals.local_energy).abs() < 1e-9);
    assert!((sum_tx - e.totals.tx_energy).abs() < 1e-9);
}
