//! The example data shipped in `examples/data/` must stay parseable
//! and meaningful — it is part of the public face of the repo.

use copmecs::app::Application;

#[test]
fn navigator_spec_parses_and_extracts() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/data/navigator.app"
    ))
    .expect("example spec file is present");
    let app = Application::from_spec_str(&text).expect("example spec parses");
    assert_eq!(app.name(), "navigator");
    assert_eq!(app.component_count(), 4);
    assert_eq!(app.function_count(), 15);
    assert!(app.pinned_functions().count() >= 4);
    let ex = app.extract();
    assert_eq!(ex.graph.check_invariants(), Ok(()));
    assert!(ex.graph.is_connected());
    // the spec round-trips through its own format
    let back = Application::from_spec_str(&app.to_spec_string()).unwrap();
    assert_eq!(app, back);
}
