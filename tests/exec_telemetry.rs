//! Exit-safe telemetry: every pipeline entry point must finish its
//! span, record its `*_nanos` histogram, and flush the sink on EVERY
//! exit — success, `?`-propagated error, or panic. Pre-`ExecCtx` the
//! error paths returned before the flush, leaving worker-shard records
//! stranded in the sharded recorder's rings; these tests read the
//! aggregated registry *without* triggering an implicit flush, so they
//! fail loudly if any path regresses to an early return.

use copmecs::core::{CutError, PipelineError};
use copmecs::engine::Cluster;
use copmecs::graph::Bipartition;
use copmecs::obs::ShardConfig;
use copmecs::prelude::*;
use copmecs::spectral::SpectralError;
use std::sync::Arc;

/// Strategy whose every cut fails with a typed error.
#[derive(Debug, Clone)]
struct FailingStrategy;

impl CutStrategy for FailingStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "failing"
    }

    fn cut(&self, _g: &Graph) -> Result<Bipartition, CutError> {
        Err(CutError::from(SpectralError::EmptyGraph))
    }
}

/// A sharded recorder with the background aggregator disabled:
/// records stay buffered in the per-thread ring shards until someone
/// calls `flush()`. Reading `metrics()` does NOT flush, which is the
/// whole point — the registry only sees what the pipeline's exit
/// epilogue actually drained.
fn manual_flush_recorder() -> Arc<ShardedRecorder> {
    Arc::new(ShardedRecorder::with_config(ShardConfig {
        drain_interval: None,
        ..ShardConfig::default()
    }))
}

fn crowd(users: usize, nodes: usize, seed: u64) -> Scenario {
    Scenario::new(SystemParams::default()).with_users((0..users).map(|i| {
        let g = NetgenSpec::new(nodes, nodes * 3)
            .seed(seed + i as u64)
            .generate()
            .expect("generable workload");
        UserWorkload::new(format!("u{i}"), g)
    }))
}

#[test]
fn failing_cut_under_a_cluster_still_drains_worker_shards() {
    let rec = manual_flush_recorder();
    let sink: Arc<dyn TraceSink> = Arc::clone(&rec) as Arc<dyn TraceSink>;
    let cluster = Arc::new(Cluster::with_telemetry(2, None, Some(Arc::clone(&sink))).unwrap());

    let offloader = Offloader::builder()
        .cluster(cluster)
        .trace_sink(sink)
        .build_with_strategy(Box::new(FailingStrategy));

    let err = offloader.solve(&crowd(3, 40, 7)).unwrap_err();
    assert!(matches!(err, PipelineError::Cut(_)), "got: {err}");

    // Each of the 3 worker tasks recorded its compression histogram
    // into its own shard before its cut failed, and the solve scope
    // recorded pipeline.solve_nanos on the calling thread. The error
    // epilogue must have drained ALL of it into the registry — this
    // read does not flush.
    let snap = rec.metrics().snapshot();
    let compression = snap
        .histogram("stage.compression_nanos")
        .expect("worker-shard samples drained on the error path");
    // the cluster runs every task to completion (3 samples); under
    // MEC_FORCE_SERIAL the serial fallback fails fast after the first
    let expected = if force_serial() { 1 } else { 3 };
    assert_eq!(compression.count(), expected, "one sample per task run");
    let solve = snap
        .histogram("pipeline.solve_nanos")
        .expect("solve histogram recorded on the error path");
    assert_eq!(solve.count(), 1);
    // cutting failed before its histogram, so it must NOT appear
    assert!(snap.histogram("stage.cutting_nanos").is_none());

    // exact conservation: everything emitted was either folded into
    // the aggregated views or accounted as dropped — never stranded
    let dropped = rec.dropped_records();
    assert_eq!(
        dropped.total(),
        0,
        "nothing lost at this volume: {dropped:?}"
    );
}

#[test]
fn failing_cut_on_the_serial_backend_flushes_too() {
    let rec = manual_flush_recorder();
    let offloader = Offloader::builder()
        .trace_sink(Arc::clone(&rec) as Arc<dyn TraceSink>)
        .build_with_strategy(Box::new(FailingStrategy));

    // exec_ctx() carries the builder's sink; with no cluster
    // configured the backend is serial
    let mut ctx = offloader.exec_ctx();
    assert!(!ctx.is_cluster());
    let err = offloader
        .solve_with(&mut ctx, &crowd(2, 40, 9))
        .unwrap_err();
    assert!(matches!(err, PipelineError::Cut(_)), "got: {err}");

    let snap = rec.metrics().snapshot();
    // serial fails fast: the first user's compression lands, its cut
    // errors, and the batch stops — exactly one sample, fully drained
    assert_eq!(
        snap.histogram("stage.compression_nanos")
            .expect("serial error path flushed")
            .count(),
        1
    );
    assert_eq!(snap.histogram("pipeline.solve_nanos").unwrap().count(), 1);
}

#[test]
fn join_many_error_path_records_its_histogram_and_flushes() {
    let rec = manual_flush_recorder();
    let mut session = OffloadSession::new(SystemParams::default())
        .with_strategy(Box::new(FailingStrategy))
        .with_trace_sink(Arc::clone(&rec) as Arc<dyn TraceSink>);

    let graphs = (0..3).map(|i| {
        let g = NetgenSpec::new(40, 120).seed(70 + i).generate().unwrap();
        (format!("u{i}"), Arc::new(g))
    });
    let err = session.join_many(graphs).unwrap_err();
    assert!(matches!(err, PipelineError::Cut(_)), "got: {err}");

    let snap = rec.metrics().snapshot();
    assert_eq!(
        snap.histogram("session.join_many_nanos")
            .expect("join_many records its histogram even when the batch fails")
            .count(),
        1
    );
}

#[test]
fn leave_flushes_like_every_other_session_mutation() {
    let rec = manual_flush_recorder();
    let mut session = OffloadSession::new(SystemParams::default())
        .with_trace_sink(Arc::clone(&rec) as Arc<dyn TraceSink>);
    let g = Arc::new(NetgenSpec::new(40, 120).seed(5).generate().unwrap());
    session.join("u0", g).unwrap();

    assert!(session.leave("u0"));
    // no implicit flush in this read: leave's own epilogue must have
    // drained its span, histogram, and counter
    let snap = rec.metrics().snapshot();
    assert_eq!(
        snap.histogram("session.leave_nanos")
            .expect("leave records and flushes its telemetry")
            .count(),
        1
    );

    // leaving an unknown user is a no-op and records nothing new
    assert!(!session.leave("ghost"));
    assert_eq!(
        rec.metrics()
            .snapshot()
            .histogram("session.leave_nanos")
            .unwrap()
            .count(),
        1
    );
}
