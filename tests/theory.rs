//! Cross-crate theory checks: the paper's spectral claims hold on the
//! actual workload generator's output, and every cut heuristic
//! respects the exact Stoer–Wagner lower bound.

use copmecs::baselines::{stoer_wagner, KernighanLin, MaxFlowBisector};
use copmecs::labelprop::{CompressionConfig, Compressor};
use copmecs::netgen::NetgenSpec;
use copmecs::spectral::{theory, SpectralBisector};
use mec_graph::{Bipartition, Side};

#[test]
fn theorem2_identity_on_generated_workloads() {
    for seed in [1u64, 2, 3] {
        let g = NetgenSpec::new(120, 420)
            .components(1)
            .seed(seed)
            .generate()
            .unwrap();
        let cut = SpectralBisector::new().bisect(&g).unwrap();
        let direct = cut.partition.cut_weight(&g);
        // paper levels q_i = ±1 …
        let via_l = theory::cut_via_laplacian(&g, &cut.partition, 1.0, -1.0);
        assert!((direct - via_l).abs() < 1e-9, "seed {seed}");
        // … and arbitrary levels d1 ≠ d2
        let via_l2 = theory::cut_via_laplacian(&g, &cut.partition, 4.0, -0.5);
        assert!((direct - via_l2).abs() < 1e-8, "seed {seed}");
    }
}

#[test]
fn fiedler_value_lower_bounds_balanced_cut_quality() {
    // λ₂ · n/4 ≤ any bisection cut weight (ratio-cut bound):
    // CUT(A,B) ≥ λ₂ · |A|·|B| / n.
    let g = NetgenSpec::new(80, 300)
        .components(1)
        .seed(7)
        .generate()
        .unwrap();
    let spectral = SpectralBisector::new().bisect(&g).unwrap();
    let n = g.node_count() as f64;
    for p in [
        spectral.partition.clone(),
        KernighanLin::new().bisect(&g).unwrap(),
        MaxFlowBisector::new().bisect(&g).unwrap(),
    ] {
        let a = p.count_on(Side::Local) as f64;
        let b = p.count_on(Side::Remote) as f64;
        let bound = spectral.fiedler_value * a * b / n;
        assert!(
            p.cut_weight(&g) >= bound - 1e-6,
            "cut {} below spectral bound {}",
            p.cut_weight(&g),
            bound
        );
    }
}

#[test]
fn no_heuristic_beats_stoer_wagner() {
    for seed in [11u64, 12, 13, 14] {
        let g = NetgenSpec::new(60, 200)
            .components(1)
            .seed(seed)
            .generate()
            .unwrap();
        let exact = stoer_wagner(&g).unwrap().cut_weight;
        let spectral = SpectralBisector::new().bisect(&g).unwrap().cut_weight;
        let kl = KernighanLin::new().bisect(&g).unwrap().cut_weight(&g);
        let mf = MaxFlowBisector::new().bisect(&g).unwrap().cut_weight(&g);
        for (name, w) in [("spectral", spectral), ("kl", kl), ("maxflow", mf)] {
            assert!(
                w >= exact - 1e-9,
                "seed {seed}: {name} cut {w} below exact minimum {exact}"
            );
        }
    }
}

#[test]
fn compression_preserves_weight_through_the_quotient() {
    let g = NetgenSpec::new(250, 1214)
        .seed(20190707)
        .generate()
        .unwrap();
    let outcome = Compressor::new(CompressionConfig::default()).compress(&g);
    let pinned_weight: f64 = outcome.pinned.iter().map(|&n| g.node_weight(n)).sum();
    let quotient_weight: f64 = outcome
        .components
        .iter()
        .map(|c| c.quotient.graph().total_node_weight())
        .sum();
    assert!(
        (pinned_weight + quotient_weight - g.total_node_weight()).abs() < 1e-6,
        "computation weight must be conserved by compression"
    );
}

#[test]
fn compressed_cut_expands_to_identical_weight_on_the_component() {
    let g = NetgenSpec::new(300, 1200).seed(3).generate().unwrap();
    let outcome = Compressor::new(CompressionConfig::default()).compress(&g);
    for comp in &outcome.components {
        let q = comp.quotient.graph();
        if q.node_count() < 2 {
            continue;
        }
        let qcut = SpectralBisector::new().bisect(q).unwrap();
        let expanded: Bipartition = comp.quotient.expand(&qcut.partition);
        assert!(
            (expanded.cut_weight(comp.subgraph.graph()) - qcut.cut_weight).abs() < 1e-9,
            "quotient cut weight must equal the expanded cut weight"
        );
    }
}

#[test]
fn merged_supernodes_only_fuse_connected_heavy_regions() {
    // every merge group must induce a connected subgraph of its
    // component — the compression rule merges directly-connected
    // same-label nodes only
    let g = NetgenSpec::new(200, 900).seed(5).generate().unwrap();
    let outcome = Compressor::new(CompressionConfig::default()).compress(&g);
    for comp in &outcome.components {
        let sub = comp.subgraph.graph();
        for members in comp.quotient.grouping().members() {
            if members.len() < 2 {
                continue;
            }
            let induced = mec_graph::Subgraph::induced(sub, &members);
            assert!(
                induced.graph().is_connected(),
                "merge group of size {} is not connected",
                members.len()
            );
        }
    }
}
