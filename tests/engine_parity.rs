//! The engine-parallel spectral backend must be a pure accelerator:
//! identical plans and costs to the serial backend, end to end.

use copmecs::engine::Cluster;
use copmecs::prelude::*;
use std::sync::Arc;

fn scenario(seed: u64) -> Scenario {
    let g = NetgenSpec::new(300, 1200).seed(seed).generate().unwrap();
    Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u", g))
}

#[test]
fn parallel_and_serial_spectral_produce_identical_plans() {
    let cluster = Arc::new(Cluster::new(4).unwrap());
    for seed in [1u64, 2, 3] {
        let s = scenario(seed);
        let serial = Offloader::builder()
            .strategy(StrategyKind::Spectral)
            .build()
            .solve(&s)
            .unwrap();
        let parallel = Offloader::builder()
            .strategy(StrategyKind::SpectralParallel {
                cluster: Arc::clone(&cluster),
                blocks: 7,
            })
            .build()
            .solve(&s)
            .unwrap();
        assert_eq!(serial.plan, parallel.plan, "seed {seed}");
        assert!(
            (serial.evaluation.totals.objective() - parallel.evaluation.totals.objective()).abs()
                < 1e-9
        );
    }
}

#[test]
fn block_count_does_not_change_results() {
    let cluster = Arc::new(Cluster::new(3).unwrap());
    let s = scenario(9);
    let mut plans = Vec::new();
    for blocks in [1usize, 4, 16] {
        let report = Offloader::builder()
            .strategy(StrategyKind::SpectralParallel {
                cluster: Arc::clone(&cluster),
                blocks,
            })
            .build()
            .solve(&s)
            .unwrap();
        plans.push(report.plan);
    }
    assert_eq!(plans[0], plans[1]);
    assert_eq!(plans[1], plans[2]);
}

#[test]
fn cluster_metrics_show_real_distribution() {
    let cluster = Arc::new(Cluster::new(4).unwrap());
    let before = cluster.metrics();
    let s = scenario(5);
    Offloader::builder()
        .strategy(StrategyKind::SpectralParallel {
            cluster: Arc::clone(&cluster),
            blocks: 8,
        })
        .build()
        .solve(&s)
        .unwrap();
    let after = cluster.metrics();
    assert!(
        after.stages > before.stages,
        "the eigensolver must have scheduled stages on the cluster"
    );
    assert!(after.tasks > before.tasks);
}
