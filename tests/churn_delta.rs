//! Property coverage for delta replanning: over random churn
//! sequences (joins, leaves, resubmits, several seeds) the
//! warm-started delta replan must never price worse than a
//! from-scratch replan of the same crowd, and whenever the drift
//! fallback forces a full rebuild the plans must match exactly.
//!
//! The CI matrix runs this file on both the default leg and the
//! `MEC_FORCE_SERIAL=1` leg; the cluster-backed case below covers the
//! pooled backend within a single run.

use copmecs::core::{OffloadSession, ReplanMode};
use copmecs::prelude::*;
use std::sync::Arc;

/// splitmix64: deterministic event streams without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn app_graph(seed: u64) -> Arc<Graph> {
    Arc::new(NetgenSpec::new(40, 110).seed(seed).generate().unwrap())
}

/// Applies one random churn event identically to both sessions and
/// returns a label for failure messages.
fn churn_step(
    rng: &mut Rng,
    next_user: &mut u64,
    present: &mut Vec<String>,
    sessions: &mut [&mut OffloadSession],
) -> String {
    let roll = rng.below(10);
    if present.is_empty() || roll < 4 {
        // arrival
        let name = format!("u{}", *next_user);
        let g = app_graph(1000 + *next_user);
        *next_user += 1;
        for s in sessions.iter_mut() {
            s.join(name.clone(), Arc::clone(&g)).unwrap();
        }
        present.push(name.clone());
        format!("join {name}")
    } else if roll < 7 {
        // departure
        let victim = present.remove(rng.below(present.len() as u64) as usize);
        for s in sessions.iter_mut() {
            assert!(s.leave(&victim));
        }
        format!("leave {victim}")
    } else {
        // resubmit: same name, new workload
        let who = present[rng.below(present.len() as u64) as usize].clone();
        let g = app_graph(5000 + rng.below(64));
        for s in sessions.iter_mut() {
            s.join(who.clone(), Arc::clone(&g)).unwrap();
        }
        format!("resubmit {who}")
    }
}

#[test]
fn delta_replan_is_objective_no_worse_than_full() {
    for seed in [3u64, 17, 42] {
        let mut rng = Rng(seed);
        let mut delta = OffloadSession::new(SystemParams::default());
        let mut full =
            OffloadSession::new(SystemParams::default()).with_replan_mode(ReplanMode::Full);
        let mut present = Vec::new();
        let mut next_user = 0u64;
        let mut history = Vec::new();
        for step in 0..24 {
            history.push(churn_step(
                &mut rng,
                &mut next_user,
                &mut present,
                &mut [&mut delta, &mut full],
            ));
            // replan every couple of events so warm starts see both
            // single-event and multi-event dirty sets
            if step % 2 == 1 {
                let d = delta.replan().unwrap().evaluation.totals.objective();
                let f = full.replan().unwrap().evaluation.totals.objective();
                let tol = 1e-9 * f.abs().max(1.0);
                assert!(
                    d <= f + tol,
                    "seed {seed}: delta objective {d} worse than full {f} after {history:?}"
                );
            }
        }
    }
}

#[test]
fn zero_drift_limit_stays_plan_identical_to_full() {
    for seed in [7u64, 29] {
        let mut rng = Rng(seed);
        // drift limit 0: any churn trips the fallback, so every replan
        // is the from-scratch path and must match full mode *exactly*
        let mut strict = OffloadSession::new(SystemParams::default()).with_drift_limit(0.0);
        let mut full =
            OffloadSession::new(SystemParams::default()).with_replan_mode(ReplanMode::Full);
        let mut present = Vec::new();
        let mut next_user = 0u64;
        for step in 0..16 {
            churn_step(
                &mut rng,
                &mut next_user,
                &mut present,
                &mut [&mut strict, &mut full],
            );
            if step % 3 == 2 {
                let s = strict.replan().unwrap();
                let f = full.replan().unwrap();
                assert_eq!(s.plan, f.plan, "seed {seed}: fallback diverged from full");
                assert_eq!(
                    s.evaluation.totals.objective().to_bits(),
                    f.evaluation.totals.objective().to_bits(),
                    "seed {seed}: fallback must be bit-identical to full"
                );
            }
        }
    }
}

#[test]
fn delta_matches_full_quality_on_the_cluster_backend() {
    let cluster = Arc::new(copmecs::engine::Cluster::new(2).unwrap());
    let mut delta = OffloadSession::new(SystemParams::default()).with_cluster(Arc::clone(&cluster));
    let mut full = OffloadSession::new(SystemParams::default())
        .with_cluster(cluster)
        .with_replan_mode(ReplanMode::Full);
    let mut rng = Rng(11);
    let mut present = Vec::new();
    let mut next_user = 0u64;
    for step in 0..12 {
        churn_step(
            &mut rng,
            &mut next_user,
            &mut present,
            &mut [&mut delta, &mut full],
        );
        if step % 2 == 1 {
            let d = delta.replan().unwrap().evaluation.totals.objective();
            let f = full.replan().unwrap().evaluation.totals.objective();
            assert!(d <= f + 1e-9 * f.abs().max(1.0));
        }
    }
}
