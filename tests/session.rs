//! Dynamic-session behaviour at the facade level: churn, strategy
//! choice, and parity with the one-shot solver.

use copmecs::core::{GreedyMode, OffloadSession, Offloader, StrategyKind};
use copmecs::prelude::*;
use std::sync::Arc;

fn app_graph(seed: u64) -> Arc<Graph> {
    Arc::new(
        SyntheticAppSpec::new("app", 3, 20)
            .seed(seed)
            .build()
            .extract()
            .graph,
    )
}

#[test]
fn session_replans_match_one_shot_for_every_strategy() {
    for kind in [
        StrategyKind::Spectral,
        StrategyKind::MaxFlow,
        StrategyKind::KernighanLin,
        StrategyKind::Multilevel,
    ] {
        let mut session = OffloadSession::with_config(
            SystemParams::default(),
            CompressionConfig::default(),
            kind.clone(),
            GreedyMode::Lazy,
        );
        let g1 = app_graph(1);
        let g2 = app_graph(2);
        session.join("a", Arc::clone(&g1)).unwrap();
        session.join("b", Arc::clone(&g2)).unwrap();
        let via_session = session.replan().unwrap();

        let scenario = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("a", g1))
            .with_user(UserWorkload::new("b", g2));
        let one_shot = Offloader::builder()
            .strategy(kind)
            .build()
            .solve(&scenario)
            .unwrap();
        assert_eq!(via_session.plan, one_shot.plan, "{}", one_shot.strategy);
    }
}

#[test]
fn churn_storm_keeps_plans_valid() {
    let mut session = OffloadSession::new(SystemParams {
        server_capacity: 500.0,
        ..SystemParams::default()
    });
    // interleave joins and leaves, re-planning at every step
    for wave in 0..3u64 {
        for i in 0..6u64 {
            session
                .join(format!("u{i}"), app_graph(wave * 10 + i))
                .unwrap();
            let report = session.replan().unwrap();
            assert_eq!(report.plan.len(), session.user_count());
            assert!(report.evaluation.totals.objective().is_finite());
        }
        for i in (0..6u64).step_by(2) {
            session.leave(&format!("u{i}"));
            let report = session.replan().unwrap();
            assert_eq!(report.plan.len(), session.user_count());
        }
    }
    assert_eq!(session.user_count(), 3);
}

#[test]
fn replan_reflects_contention_after_mass_join() {
    let params = SystemParams {
        server_capacity: 400.0,
        ..SystemParams::default()
    };
    let mut session = OffloadSession::new(params);
    session.join("first", app_graph(7)).unwrap();
    let alone = session.replan().unwrap();
    let alone_remote = alone.offloaded_count();
    for i in 0..20u64 {
        session.join(format!("crowd{i}"), app_graph(7)).unwrap();
    }
    let crowded = session.replan().unwrap();
    // the same first user's workload is now contended: fewer functions
    // offload per user on average
    let per_user_remote = crowded.offloaded_count() as f64 / 21.0;
    assert!(
        per_user_remote <= alone_remote as f64 + 1e-9,
        "crowding must not increase per-user offloading ({per_user_remote} vs {alone_remote})"
    );
}
