//! End-to-end integration: application model → extraction →
//! compression → cut → greedy → priced plan.

use copmecs::prelude::*;

fn scenario_from_apps(seed: u64, users: usize) -> Scenario {
    let mut s = Scenario::new(SystemParams::default());
    for i in 0..users {
        let app = SyntheticAppSpec::new(format!("app{i}"), 3, 25)
            .seed(seed + i as u64)
            .build();
        s = s.with_user(UserWorkload::new(format!("u{i}"), app.extract().graph));
    }
    s
}

#[test]
fn every_strategy_produces_a_valid_priced_plan() {
    let s = scenario_from_apps(1, 3);
    for kind in [
        StrategyKind::Spectral,
        StrategyKind::MaxFlow,
        StrategyKind::KernighanLin,
    ] {
        let report = Offloader::builder()
            .strategy(kind)
            .build()
            .solve(&s)
            .unwrap();
        assert_eq!(report.plan.len(), 3);
        assert_eq!(s.validate_plan(&report.plan), Ok(()));
        // the report's evaluation equals a fresh evaluation of the plan
        let again = s.evaluate(&report.plan).unwrap();
        assert_eq!(report.evaluation, again);
    }
}

#[test]
fn pipeline_never_loses_to_all_local_or_initial() {
    for seed in [3u64, 7, 21] {
        let s = scenario_from_apps(seed, 2);
        let report = Offloader::new().solve(&s).unwrap();
        let all_local: Vec<_> = s.users().iter().map(|u| u.all_local_plan()).collect();
        let base = s.evaluate(&all_local).unwrap();
        assert!(
            report.evaluation.totals.objective() <= base.totals.objective() + 1e-9,
            "seed {seed}: {} > {}",
            report.evaluation.totals.objective(),
            base.totals.objective()
        );
        assert!(report.greedy.final_objective <= report.greedy.initial_objective + 1e-9);
    }
}

#[test]
fn greedy_objective_agrees_with_cost_model() {
    let s = scenario_from_apps(11, 4);
    let report = Offloader::new().solve(&s).unwrap();
    assert!(
        (report.greedy.final_objective - report.evaluation.totals.objective()).abs() < 1e-6,
        "incremental greedy price {} vs model {}",
        report.greedy.final_objective,
        report.evaluation.totals.objective()
    );
}

#[test]
fn unoffloadable_functions_always_stay_on_the_device() {
    let app = SyntheticAppSpec::face_recognition().seed(5).build();
    let extracted = app.extract();
    let s = Scenario::new(SystemParams::default())
        .with_user(UserWorkload::new("cam", extracted.graph.clone()));
    let report = Offloader::new().solve(&s).unwrap();
    for (fid, f) in app.functions() {
        if !f.kind.is_offloadable() {
            assert_eq!(
                report.plan[0].side(extracted.node_of(fid)),
                Side::Local,
                "{} must stay local",
                f.name
            );
        }
    }
}

#[test]
fn end_to_end_determinism_across_runs() {
    let s = scenario_from_apps(42, 3);
    let a = Offloader::new().solve(&s).unwrap();
    let b = Offloader::new().solve(&s).unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(
        a.evaluation.totals.objective().to_bits(),
        b.evaluation.totals.objective().to_bits()
    );
}

#[test]
fn netgen_workloads_flow_through_the_whole_stack() {
    let g = NetgenSpec::new(400, 1600).seed(9).generate().unwrap();
    let s = Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u", g));
    let report = Offloader::new().solve(&s).unwrap();
    assert_eq!(report.compression.len(), 1);
    let stats = report.compression[0];
    assert_eq!(stats.original_nodes, 400);
    assert!(stats.compressed_nodes <= stats.offloadable_nodes);
    assert!(stats.node_reduction() > 0.0);
    assert!(report.evaluation.totals.objective() > 0.0);
}

#[test]
fn greedy_modes_agree_closely_end_to_end() {
    let s = scenario_from_apps(17, 2);
    let lazy = Offloader::builder()
        .greedy_mode(GreedyMode::Lazy)
        .build()
        .solve(&s)
        .unwrap();
    let exhaustive = Offloader::builder()
        .greedy_mode(GreedyMode::Exhaustive)
        .build()
        .solve(&s)
        .unwrap();
    let a = lazy.evaluation.totals.objective();
    let b = exhaustive.evaluation.totals.objective();
    assert!(
        (a - b).abs() / a.max(1.0) < 0.05,
        "lazy {a} vs exhaustive {b}"
    );
}

#[test]
fn compression_strength_controls_plan_granularity() {
    let g = NetgenSpec::new(300, 1200).seed(4).generate().unwrap();
    let s = Scenario::new(SystemParams::default()).with_user(UserWorkload::new("u", g));
    // no compression (infinite threshold) vs default compression
    let fine = Offloader::builder()
        .compression(CompressionConfig::new().threshold(ThresholdRule::Absolute(f64::INFINITY)))
        .build()
        .solve(&s)
        .unwrap();
    let coarse = Offloader::new().solve(&s).unwrap();
    assert!(coarse.compression[0].compressed_nodes < fine.compression[0].compressed_nodes);
    // both valid; the fine-grained plan can only be equal or better in
    // objective (more freedom), but costs more cut work — we only check
    // validity and sane pricing here
    assert_eq!(s.validate_plan(&fine.plan), Ok(()));
    assert_eq!(s.validate_plan(&coarse.plan), Ok(()));
}
