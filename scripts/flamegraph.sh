#!/usr/bin/env sh
# Render a flame graph from collapsed-stack span output.
#
# Input is the format Recorder::to_collapsed_stacks() produces
# ("root;child;leaf <self_nanos>" per line), either from a file or
# pulled live from a serving pipeline's /stacks endpoint:
#
#   cargo run --example pipeline_trace -- --collapsed-out trace.folded
#   scripts/flamegraph.sh trace.folded flame.svg
#
#   cargo run --release -p mec-bench --bin experiments -- fig9 --serve 127.0.0.1:9898 &
#   scripts/flamegraph.sh http://127.0.0.1:9898 flame.svg
#
# Uses whichever renderer is on PATH: inferno-flamegraph (cargo
# install inferno) or the classic flamegraph.pl. With neither
# installed, prints the top self-time frames so the data is still
# inspectable offline.
set -eu

in="${1:?usage: flamegraph.sh COLLAPSED_FILE_OR_URL [OUT_SVG]}"
out="${2:-flame.svg}"

# A live endpoint: fetch /stacks into a temp file and proceed as if a
# collapsed file had been passed.
case "$in" in
http://* | https://*)
    url="$in"
    case "$url" in
    */stacks) ;;
    *) url="${url%/}/stacks" ;;
    esac
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$url" >"$tmp"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO "$tmp" "$url"
    else
        echo "error: fetching $url needs curl or wget on PATH" >&2
        exit 1
    fi
    echo "fetched $url"
    in="$tmp"
    ;;
esac

if [ ! -s "$in" ]; then
    echo "error: $in is missing or empty" >&2
    exit 1
fi

if command -v inferno-flamegraph >/dev/null 2>&1; then
    inferno-flamegraph --title "mec pipeline spans (self time, ns)" \
        --countname ns <"$in" >"$out"
    echo "wrote $out (inferno)"
elif command -v flamegraph.pl >/dev/null 2>&1; then
    flamegraph.pl --title "mec pipeline spans (self time, ns)" \
        --countname ns <"$in" >"$out"
    echo "wrote $out (flamegraph.pl)"
else
    echo "no flamegraph renderer on PATH (install inferno or flamegraph.pl);"
    echo "top self-time frames in $in:"
    sort -t' ' -k2 -rn "$in" | head -15 | awk '{printf "  %12d ns  %s\n", $NF, $1}'
fi
