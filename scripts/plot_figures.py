#!/usr/bin/env python3
"""Render the paper's figures from the JSON the experiment harness
writes into results/.

Usage:
    cargo run --release -p mec-bench --bin experiments -- all
    python3 scripts/plot_figures.py [results_dir] [output_dir]

Requires matplotlib. Produces fig3.png ... fig9.png mirroring the
paper's bar charts (Figs. 3-8, normalised) and runtime curves (Fig. 9).
"""

import json
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

RESULTS = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
OUT = Path(sys.argv[2] if len(sys.argv) > 2 else "results")

ENERGY_FIGS = {
    "fig3": ("local_energy", "size", "original graph size", "local (normalised)"),
    "fig4": ("tx_energy", "size", "original graph size", "transmission (normalised)"),
    "fig5": ("total_energy", "size", "original graph size", "total consumption (normalised)"),
    "fig6": ("local_energy", "users", "user size", "local (normalised)"),
    "fig7": ("tx_energy", "users", "user size", "transmission (normalised)"),
    "fig8": ("total_energy", "users", "user size", "total consumption (normalised)"),
}


def grouped_bars(points, metric, xkey, xlabel, ylabel, path):
    xs = sorted({p[xkey] for p in points})
    strategies = []
    for p in points:
        if p["strategy"] not in strategies:
            strategies.append(p["strategy"])
    peak = max(p[metric] for p in points) or 1.0
    width = 0.8 / len(strategies)
    fig, ax = plt.subplots(figsize=(7, 4))
    for si, strat in enumerate(strategies):
        vals = []
        for x in xs:
            match = [p for p in points if p[xkey] == x and p["strategy"] == strat]
            vals.append(match[0][metric] / peak if match else 0.0)
        offs = [i + (si - (len(strategies) - 1) / 2) * width for i in range(len(xs))]
        bars = ax.bar(offs, vals, width=width, label=strat)
        for rect, v in zip(bars, vals):
            ax.annotate(
                f"{v:.2f}",
                (rect.get_x() + rect.get_width() / 2, rect.get_height()),
                ha="center",
                va="bottom",
                fontsize=7,
            )
    ax.set_xticks(range(len(xs)), [str(x) for x in xs])
    ax.set_xlabel(xlabel)
    ax.set_ylabel(ylabel)
    ax.set_ylim(0, 1.5)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)
    print(f"wrote {path}")


def runtime_curves(points, path):
    variants = []
    for p in points:
        if p["variant"] not in variants:
            variants.append(p["variant"])
    fig, ax = plt.subplots(figsize=(7, 4))
    for variant in variants:
        series = [(p["size"], p["seconds"]) for p in points if p["variant"] == variant]
        series.sort()
        ax.plot([s for s, _ in series], [t for _, t in series], marker="o", label=variant)
    ax.set_xlabel("original graph size")
    ax.set_ylabel("running time (s)")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)
    print(f"wrote {path}")


def main():
    for fig, (metric, xkey, xlabel, ylabel) in ENERGY_FIGS.items():
        src = RESULTS / f"{fig}.json"
        if not src.exists():
            print(f"skipping {fig}: {src} not found")
            continue
        points = json.loads(src.read_text())
        grouped_bars(points, metric, xkey, xlabel, ylabel, OUT / f"{fig}.png")
    src = RESULTS / "fig9.json"
    if src.exists():
        runtime_curves(json.loads(src.read_text()), OUT / "fig9.png")
    else:
        print(f"skipping fig9: {src} not found")


if __name__ == "__main__":
    main()
