#!/usr/bin/env python3
"""Render the paper's figures from the JSON the experiment harness
writes into results/.

Usage:
    cargo run --release -p mec-bench --bin experiments -- all --trace-out results/trace.json
    python3 scripts/plot_figures.py [results_dir] [output_dir] [--trace FILE]

Requires matplotlib. Produces fig3.png ... fig9.png mirroring the
paper's bar charts (Figs. 3-8, normalised) and runtime curves (Fig. 9).
When a telemetry trace (the `--trace-out` JSON) is found — either via
--trace or as <results_dir>/trace.json — also renders trace_stages.png
(time per pipeline stage from the recorded spans) and prints the
pipeline counters (label-propagation rounds, Lanczos iterations,
greedy evaluated/accepted, ...).
"""

import json
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

ARGS = sys.argv[1:]
TRACE = None
if "--trace" in ARGS:
    i = ARGS.index("--trace")
    if i + 1 >= len(ARGS):
        sys.exit("--trace needs a path")
    TRACE = Path(ARGS[i + 1])
    del ARGS[i : i + 2]
RESULTS = Path(ARGS[0] if len(ARGS) > 0 else "results")
OUT = Path(ARGS[1] if len(ARGS) > 1 else "results")
if TRACE is None and (RESULTS / "trace.json").exists():
    TRACE = RESULTS / "trace.json"

ENERGY_FIGS = {
    "fig3": ("local_energy", "size", "original graph size", "local (normalised)"),
    "fig4": ("tx_energy", "size", "original graph size", "transmission (normalised)"),
    "fig5": ("total_energy", "size", "original graph size", "total consumption (normalised)"),
    "fig6": ("local_energy", "users", "user size", "local (normalised)"),
    "fig7": ("tx_energy", "users", "user size", "transmission (normalised)"),
    "fig8": ("total_energy", "users", "user size", "total consumption (normalised)"),
}


def grouped_bars(points, metric, xkey, xlabel, ylabel, path):
    xs = sorted({p[xkey] for p in points})
    strategies = []
    for p in points:
        if p["strategy"] not in strategies:
            strategies.append(p["strategy"])
    peak = max(p[metric] for p in points) or 1.0
    width = 0.8 / len(strategies)
    fig, ax = plt.subplots(figsize=(7, 4))
    for si, strat in enumerate(strategies):
        vals = []
        for x in xs:
            match = [p for p in points if p[xkey] == x and p["strategy"] == strat]
            vals.append(match[0][metric] / peak if match else 0.0)
        offs = [i + (si - (len(strategies) - 1) / 2) * width for i in range(len(xs))]
        bars = ax.bar(offs, vals, width=width, label=strat)
        for rect, v in zip(bars, vals):
            ax.annotate(
                f"{v:.2f}",
                (rect.get_x() + rect.get_width() / 2, rect.get_height()),
                ha="center",
                va="bottom",
                fontsize=7,
            )
    ax.set_xticks(range(len(xs)), [str(x) for x in xs])
    ax.set_xlabel(xlabel)
    ax.set_ylabel(ylabel)
    ax.set_ylim(0, 1.5)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)
    print(f"wrote {path}")


def runtime_curves(points, path):
    variants = []
    for p in points:
        if p["variant"] not in variants:
            variants.append(p["variant"])
    fig, ax = plt.subplots(figsize=(7, 4))
    for variant in variants:
        series = [(p["size"], p["seconds"]) for p in points if p["variant"] == variant]
        series.sort()
        ax.plot([s for s, _ in series], [t for _, t in series], marker="o", label=variant)
    ax.set_xlabel("original graph size")
    ax.set_ylabel("running time (s)")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)
    print(f"wrote {path}")


def trace_summary(trace, path):
    """Stage-duration chart + counter dump from a telemetry trace
    (the JSON `mec_obs::Recorder` exports, schema version 1)."""
    if trace.get("version") != 1:
        print(f"skipping trace: unknown schema version {trace.get('version')!r}")
        return
    totals = {}
    for span in trace.get("spans", []):
        if span.get("duration_ns") is not None:
            totals[span["name"]] = totals.get(span["name"], 0) + span["duration_ns"]
    if totals:
        names = sorted(totals, key=totals.get)
        fig, ax = plt.subplots(figsize=(7, 0.5 + 0.4 * len(names)))
        ax.barh(range(len(names)), [totals[n] / 1e6 for n in names])
        ax.set_yticks(range(len(names)), names, fontsize=8)
        ax.set_xlabel("total time (ms)")
        fig.tight_layout()
        fig.savefig(path, dpi=150)
        plt.close(fig)
        print(f"wrote {path}")
    counters = trace.get("counters", {})
    if counters:
        print("trace counters:")
        for name in sorted(counters):
            print(f"  {name:<24} {counters[name]}")
    # "events_dropped" since the mec-metrics PR; older traces said "dropped_events"
    dropped = trace.get("events_dropped", trace.get("dropped_events"))
    if dropped:
        print(f"  (ring buffer dropped {dropped} events)")
    if trace.get("warning"):
        print(f"  warning: {trace['warning']}")


def main():
    for fig, (metric, xkey, xlabel, ylabel) in ENERGY_FIGS.items():
        src = RESULTS / f"{fig}.json"
        if not src.exists():
            print(f"skipping {fig}: {src} not found")
            continue
        points = json.loads(src.read_text())
        grouped_bars(points, metric, xkey, xlabel, ylabel, OUT / f"{fig}.png")
    src = RESULTS / "fig9.json"
    if src.exists():
        runtime_curves(json.loads(src.read_text()), OUT / "fig9.png")
    else:
        print(f"skipping fig9: {src} not found")
    if TRACE is not None and TRACE.exists():
        trace_summary(json.loads(TRACE.read_text()), OUT / "trace_stages.png")


if __name__ == "__main__":
    main()
